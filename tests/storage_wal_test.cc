#include "storage/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

namespace sentinel::storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("sentinel_wal_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".wal"))
                .string();
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

LogRecord MakeUpdate(TxnId txn, PageId page, SlotId slot) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kUpdate;
  rec.rid = Rid{page, slot};
  rec.before = {1, 2, 3};
  rec.after = {4, 5, 6, 7};
  return rec;
}

TEST_F(WalTest, AppendAssignsDenseLsns) {
  LogManager log;
  ASSERT_TRUE(log.Open(path_).ok());
  for (Lsn expected = 1; expected <= 5; ++expected) {
    auto lsn = log.Append(MakeUpdate(1, 2, 3));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, expected);
  }
  EXPECT_EQ(log.next_lsn(), 6u);
  ASSERT_TRUE(log.Close().ok());
}

TEST_F(WalTest, ScanRoundTripsRecords) {
  LogManager log;
  ASSERT_TRUE(log.Open(path_).ok());
  LogRecord rec = MakeUpdate(7, 42, 9);
  rec.prev_lsn = 123;
  rec.undo_next_lsn = 55;
  rec.undone_type = LogRecordType::kDelete;
  ASSERT_TRUE(log.Append(rec).ok());

  int seen = 0;
  ASSERT_TRUE(log.Scan([&](const LogRecord& r) {
                   ++seen;
                   EXPECT_EQ(r.lsn, 1u);
                   EXPECT_EQ(r.prev_lsn, 123u);
                   EXPECT_EQ(r.txn_id, 7u);
                   EXPECT_EQ(r.type, LogRecordType::kUpdate);
                   EXPECT_EQ(r.rid.page_id, 42u);
                   EXPECT_EQ(r.rid.slot, 9u);
                   EXPECT_EQ(r.before, (std::vector<std::uint8_t>{1, 2, 3}));
                   EXPECT_EQ(r.after, (std::vector<std::uint8_t>{4, 5, 6, 7}));
                   EXPECT_EQ(r.undo_next_lsn, 55u);
                   EXPECT_EQ(r.undone_type, LogRecordType::kDelete);
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(seen, 1);
  ASSERT_TRUE(log.Close().ok());
}

TEST_F(WalTest, ReopenContinuesLsnSequence) {
  {
    LogManager log;
    ASSERT_TRUE(log.Open(path_).ok());
    ASSERT_TRUE(log.Append(MakeUpdate(1, 1, 1)).ok());
    ASSERT_TRUE(log.Append(MakeUpdate(1, 1, 2)).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  LogManager log;
  ASSERT_TRUE(log.Open(path_).ok());
  auto lsn = log.Append(MakeUpdate(2, 1, 3));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  ASSERT_TRUE(log.Close().ok());
}

TEST_F(WalTest, TornTailIsIgnored) {
  {
    LogManager log;
    ASSERT_TRUE(log.Open(path_).ok());
    ASSERT_TRUE(log.Append(MakeUpdate(1, 1, 1)).ok());
    ASSERT_TRUE(log.Flush().ok());
    ASSERT_TRUE(log.Close().ok());
  }
  // Append a torn record: size header promising more bytes than exist.
  {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::uint32_t bogus_size = 9999;
    std::fwrite(&bogus_size, sizeof(bogus_size), 1, f);
    std::uint8_t partial[3] = {1, 2, 3};
    std::fwrite(partial, sizeof(partial), 1, f);
    std::fclose(f);
  }
  LogManager log;
  ASSERT_TRUE(log.Open(path_).ok());
  int count = 0;
  ASSERT_TRUE(log.Scan([&](const LogRecord&) {
                   ++count;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(log.next_lsn(), 2u);
  ASSERT_TRUE(log.Close().ok());
}

}  // namespace
}  // namespace sentinel::storage
