#include "storage/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"

namespace sentinel::storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("sentinel_wal_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".wal"))
                .string();
    std::remove(path_.c_str());
  }
  void TearDown() override {
    FailPointRegistry::Instance().DisableAll();
    std::remove(path_.c_str());
  }
  std::string path_;
};

LogRecord MakeCommit(TxnId txn) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kCommit;
  return rec;
}

LogRecord MakeUpdate(TxnId txn, PageId page, SlotId slot) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kUpdate;
  rec.rid = Rid{page, slot};
  rec.before = {1, 2, 3};
  rec.after = {4, 5, 6, 7};
  return rec;
}

TEST_F(WalTest, AppendAssignsDenseLsns) {
  LogManager log;
  ASSERT_TRUE(log.Open(path_).ok());
  for (Lsn expected = 1; expected <= 5; ++expected) {
    auto lsn = log.Append(MakeUpdate(1, 2, 3));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, expected);
  }
  EXPECT_EQ(log.next_lsn(), 6u);
  ASSERT_TRUE(log.Close().ok());
}

TEST_F(WalTest, ScanRoundTripsRecords) {
  LogManager log;
  ASSERT_TRUE(log.Open(path_).ok());
  LogRecord rec = MakeUpdate(7, 42, 9);
  rec.prev_lsn = 123;
  rec.undo_next_lsn = 55;
  rec.undone_type = LogRecordType::kDelete;
  ASSERT_TRUE(log.Append(rec).ok());

  int seen = 0;
  ASSERT_TRUE(log.Scan([&](const LogRecord& r) {
                   ++seen;
                   EXPECT_EQ(r.lsn, 1u);
                   EXPECT_EQ(r.prev_lsn, 123u);
                   EXPECT_EQ(r.txn_id, 7u);
                   EXPECT_EQ(r.type, LogRecordType::kUpdate);
                   EXPECT_EQ(r.rid.page_id, 42u);
                   EXPECT_EQ(r.rid.slot, 9u);
                   EXPECT_EQ(r.before, (std::vector<std::uint8_t>{1, 2, 3}));
                   EXPECT_EQ(r.after, (std::vector<std::uint8_t>{4, 5, 6, 7}));
                   EXPECT_EQ(r.undo_next_lsn, 55u);
                   EXPECT_EQ(r.undone_type, LogRecordType::kDelete);
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(seen, 1);
  ASSERT_TRUE(log.Close().ok());
}

TEST_F(WalTest, ReopenContinuesLsnSequence) {
  {
    LogManager log;
    ASSERT_TRUE(log.Open(path_).ok());
    ASSERT_TRUE(log.Append(MakeUpdate(1, 1, 1)).ok());
    ASSERT_TRUE(log.Append(MakeUpdate(1, 1, 2)).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  LogManager log;
  ASSERT_TRUE(log.Open(path_).ok());
  auto lsn = log.Append(MakeUpdate(2, 1, 3));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  ASSERT_TRUE(log.Close().ok());
}

TEST_F(WalTest, TornTailIsIgnored) {
  {
    LogManager log;
    ASSERT_TRUE(log.Open(path_).ok());
    ASSERT_TRUE(log.Append(MakeUpdate(1, 1, 1)).ok());
    ASSERT_TRUE(log.Flush().ok());
    ASSERT_TRUE(log.Close().ok());
  }
  // Append a torn record: size header promising more bytes than exist.
  {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::uint32_t bogus_size = 9999;
    std::fwrite(&bogus_size, sizeof(bogus_size), 1, f);
    std::uint8_t partial[3] = {1, 2, 3};
    std::fwrite(partial, sizeof(partial), 1, f);
    std::fclose(f);
  }
  LogManager log;
  ASSERT_TRUE(log.Open(path_).ok());
  int count = 0;
  ASSERT_TRUE(log.Scan([&](const LogRecord&) {
                   ++count;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(log.next_lsn(), 2u);
  ASSERT_TRUE(log.Close().ok());
}

TEST_F(WalTest, InlineModeSyncsOncePerCommit) {
  LogManager::Options options;
  options.group_commit = false;
  LogManager log(options);
  ASSERT_TRUE(log.Open(path_).ok());
  for (TxnId txn = 1; txn <= 3; ++txn) {
    ASSERT_TRUE(log.Append(MakeCommit(txn)).ok());
  }
  EXPECT_EQ(log.sync_count(), 3u);
  EXPECT_EQ(log.durable_lsn(), 3u);
  EXPECT_EQ(log.appended_lsn(), 3u);
  ASSERT_TRUE(log.Close().ok());
}

TEST_F(WalTest, GroupCommitCoalescesConcurrentCommits) {
  // Make every fsync barrier observably slow so concurrent committers pile
  // up behind it and the next barrier provably absorbs more than one of
  // them: with 8 threads x 10 commits each, perfect one-barrier-per-commit
  // serialization cannot happen.
  ASSERT_TRUE(
      FailPointRegistry::Instance().Enable("wal.flush", "delay(ms=2)").ok());
  LogManager log;
  ASSERT_TRUE(log.Open(path_).ok());
  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, &failures, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        const TxnId txn = static_cast<TxnId>(t * kCommitsPerThread + i + 1);
        if (!log.Append(MakeCommit(txn)).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  constexpr std::uint64_t kTotal = kThreads * kCommitsPerThread;
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(log.appended_lsn(), kTotal);
  // Every sync commit returned, so the watermark covers all of them.
  EXPECT_EQ(log.durable_lsn(), kTotal);
  EXPECT_EQ(log.group_commit_waits(), kTotal);
  // The whole point: far fewer fsync barriers than commits.
  EXPECT_LT(log.sync_count(), kTotal);
  EXPECT_GE(log.sync_count(), 1u);
  ASSERT_TRUE(log.Close().ok());
}

TEST_F(WalTest, GroupBarrierFailureWedgesWholeBatch) {
  // Every barrier attempt fails. Every committer in the batch must see the
  // error; none may be woken "durable" later (the watermark never moves).
  ASSERT_TRUE(FailPointRegistry::Instance().Enable("wal.flush", "error").ok());
  LogManager log;
  ASSERT_TRUE(log.Open(path_).ok());
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, &failures, t] {
      if (!log.Append(MakeCommit(static_cast<TxnId>(t + 1))).ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), kThreads);
  EXPECT_TRUE(log.wedged());
  EXPECT_EQ(log.durable_lsn(), 0u);
  EXPECT_EQ(log.sync_count(), 0u);
  // Disarming does not un-wedge: the log stays refused until reopen.
  FailPointRegistry::Instance().DisableAll();
  EXPECT_FALSE(log.Append(MakeCommit(99)).ok());
  EXPECT_FALSE(log.Flush().ok());
  ASSERT_TRUE(log.Close().ok());

  LogManager reopened;
  ASSERT_TRUE(reopened.Open(path_).ok());
  EXPECT_FALSE(reopened.wedged());
  ASSERT_TRUE(reopened.Close().ok());
}

TEST_F(WalTest, RedundantBarriersAreSkipped) {
  LogManager log;
  ASSERT_TRUE(log.Open(path_).ok());
  // Empty log: nothing beyond the durable watermark, no fsync.
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_EQ(log.sync_count(), 0u);

  ASSERT_TRUE(log.Append(MakeUpdate(1, 1, 1)).ok());
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_EQ(log.sync_count(), 1u);
  // Re-flushing already-durable bytes is a no-op.
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_EQ(log.sync_count(), 1u);

  // A commit whose bytes an explicit Flush() already pushed to stable
  // storage must not pay a second barrier.
  ASSERT_TRUE(log.Append(MakeCommit(1), CommitDurability::kAsync).ok());
  ASSERT_TRUE(log.Flush().ok());
  const std::uint64_t syncs_after_flush = log.sync_count();
  ASSERT_TRUE(log.WaitDurable(log.appended_lsn()).ok());
  EXPECT_EQ(log.sync_count(), syncs_after_flush);
  EXPECT_EQ(log.durable_lsn(), log.appended_lsn());
  ASSERT_TRUE(log.Close().ok());
}

TEST_F(WalTest, AsyncCommitWatermarkLagsAcksAndConverges) {
  // Slow barriers guarantee the durable watermark visibly trails the async
  // acks: a barrier covering the last ack cannot have completed within the
  // microseconds between that ack and the check below.
  ASSERT_TRUE(
      FailPointRegistry::Instance().Enable("wal.flush", "delay(ms=2)").ok());
  LogManager log;
  ASSERT_TRUE(log.Open(path_).ok());
  constexpr std::uint64_t kCommits = 50;
  for (TxnId txn = 1; txn <= kCommits; ++txn) {
    ASSERT_TRUE(log.Append(MakeCommit(txn), CommitDurability::kAsync).ok());
  }
  EXPECT_EQ(log.appended_lsn(), kCommits);
  EXPECT_EQ(log.async_commits(), kCommits);
  EXPECT_LT(log.durable_lsn(), kCommits);  // acks outran durability
  FailPointRegistry::Instance().DisableAll();
  // Convergence: the group thread catches up; WaitDurable joins it.
  ASSERT_TRUE(log.WaitDurable(kCommits).ok());
  EXPECT_EQ(log.durable_lsn(), kCommits);
  ASSERT_TRUE(log.Close().ok());
}

}  // namespace
}  // namespace sentinel::storage
