#include "core/active_database.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "core/reactive.h"

namespace sentinel::core {
namespace {

using detector::EventModifier;
using detector::ParamContext;
using rules::CouplingMode;
using rules::RuleContext;
using rules::RuleManager;

/// The paper's STOCK class (§3.1), hand-written the way the Sentinel
/// pre/post-processors would have rewritten it.
class Stock : public Reactive {
 public:
  Stock(ActiveDatabase* db, oodb::Oid oid) : Reactive(db, "STOCK", oid) {}

  int sell_stock(int qty) {
    MethodScope scope(this, "int sell_stock(int qty)");
    scope.Param("qty", oodb::Value::Int(qty));
    scope.EnterBody();
    return qty;
  }

  void set_price(double price) {
    MethodScope scope(this, "void set_price(float price)");
    scope.Param("price", oodb::Value::Double(price));
    scope.EnterBody();
    (void)SetAttr("price", oodb::Value::Double(price));
  }
};

class ActiveDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = (std::filesystem::temp_directory_path() /
               ("sentinel_adb_test_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                  .string();
    Cleanup();
    ASSERT_TRUE(db_.Open(prefix_).ok());
    ASSERT_TRUE(db_.database()
                    ->classes()
                    ->Register(oodb::ClassDef("STOCK", "")
                                   .AddAttribute("price", oodb::ValueType::kDouble)
                                   .AddMethod("int sell_stock(int qty)", {"qty"})
                                   .AddMethod("void set_price(float price)",
                                              {"price"}))
                    .ok());
  }

  void TearDown() override {
    (void)db_.Close();
    Cleanup();
  }

  void Cleanup() {
    std::remove((prefix_ + ".db").c_str());
    std::remove((prefix_ + ".wal").c_str());
  }

  std::string prefix_;
  ActiveDatabase db_;
};

TEST_F(ActiveDatabaseTest, ImmediateRuleOnMethodEvent) {
  ASSERT_TRUE(db_.DeclareEvent("e1", "STOCK", EventModifier::kEnd,
                               "int sell_stock(int qty)")
                  .ok());
  std::atomic<int> fired{0};
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("r1", "e1", nullptr,
                               [&](const RuleContext&) { ++fired; })
                  .ok());

  auto txn = db_.Begin();
  ASSERT_TRUE(txn.ok());
  auto oid = db_.CreateObject(*txn, "STOCK", "IBM");
  ASSERT_TRUE(oid.ok());
  Stock ibm(&db_, *oid);
  ibm.set_current_txn(*txn);
  ibm.sell_stock(100);
  EXPECT_EQ(fired, 1);  // the application waited for the immediate rule
  ASSERT_TRUE(db_.Commit(*txn).ok());
}

TEST_F(ActiveDatabaseTest, BeginAndEndMethodModifiers) {
  ASSERT_TRUE(db_.DeclareEvent("e2", "STOCK", EventModifier::kBegin,
                               "void set_price(float price)")
                  .ok());
  ASSERT_TRUE(db_.DeclareEvent("e3", "STOCK", EventModifier::kEnd,
                               "void set_price(float price)")
                  .ok());
  std::vector<std::string> order;
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("r_begin", "e2", nullptr,
                               [&](const RuleContext&) {
                                 order.push_back("begin");
                               })
                  .ok());
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("r_end", "e3", nullptr,
                               [&](const RuleContext&) { order.push_back("end"); })
                  .ok());
  auto txn = db_.Begin();
  auto oid = db_.CreateObject(*txn, "STOCK");
  Stock s(&db_, *oid);
  s.set_current_txn(*txn);
  s.set_price(55.5);
  ASSERT_TRUE(db_.Commit(*txn).ok());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "begin");
  EXPECT_EQ(order[1], "end");
}

TEST_F(ActiveDatabaseTest, RuleParametersCarryMethodArguments) {
  ASSERT_TRUE(db_.DeclareEvent("e1", "STOCK", EventModifier::kEnd,
                               "int sell_stock(int qty)")
                  .ok());
  std::atomic<std::int64_t> qty_seen{0};
  std::atomic<oodb::Oid> oid_seen{0};
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("r1", "e1", nullptr,
                               [&](const RuleContext& ctx) {
                                 qty_seen = ctx.Param("qty")->AsInt();
                                 oid_seen = ctx.occurrence->constituents[0]->oid;
                               })
                  .ok());
  auto txn = db_.Begin();
  auto oid = db_.CreateObject(*txn, "STOCK");
  Stock s(&db_, *oid);
  s.set_current_txn(*txn);
  s.sell_stock(777);
  ASSERT_TRUE(db_.Commit(*txn).ok());
  EXPECT_EQ(qty_seen, 777);
  EXPECT_EQ(oid_seen, *oid);
}

TEST_F(ActiveDatabaseTest, DeferredRuleRunsOnceAtPreCommit) {
  // Paper §2.3: a DEFERRED rule with event E is rewritten to
  // A*(begin_txn, E, pre_commit) and executes exactly once per transaction
  // even when E triggers many times.
  ASSERT_TRUE(db_.DeclareEvent("e1", "STOCK", EventModifier::kEnd,
                               "int sell_stock(int qty)")
                  .ok());
  std::atomic<int> fired{0};
  std::atomic<std::size_t> accumulated{0};
  RuleManager::RuleOptions options;
  options.coupling = CouplingMode::kDeferred;
  options.context = ParamContext::kCumulative;
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("r_def", "e1", nullptr,
                               [&](const RuleContext& ctx) {
                                 ++fired;
                                 accumulated = ctx.occurrence->Of("e1").size();
                               },
                               options)
                  .ok());
  auto txn = db_.Begin();
  auto oid = db_.CreateObject(*txn, "STOCK");
  Stock s(&db_, *oid);
  s.set_current_txn(*txn);
  s.sell_stock(1);
  s.sell_stock(2);
  s.sell_stock(3);
  EXPECT_EQ(fired, 0);  // nothing until pre-commit
  ASSERT_TRUE(db_.Commit(*txn).ok());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(accumulated, 3u);
  // A second transaction with no e1 occurrences must not fire the rule.
  auto txn2 = db_.Begin();
  ASSERT_TRUE(db_.Commit(*txn2).ok());
  EXPECT_EQ(fired, 1);
}

TEST_F(ActiveDatabaseTest, EventsDoNotLeakAcrossTransactions) {
  // Paper §3.2.2 item 3: partial detections are flushed at commit/abort.
  ASSERT_TRUE(db_.DeclareEvent("sell", "STOCK", EventModifier::kEnd,
                               "int sell_stock(int qty)")
                  .ok());
  ASSERT_TRUE(db_.DeclareEvent("price", "STOCK", EventModifier::kEnd,
                               "void set_price(float price)")
                  .ok());
  auto sell = db_.detector()->Find("sell");
  auto price = db_.detector()->Find("price");
  ASSERT_TRUE(db_.detector()->DefineAnd("sell_and_price", *sell, *price).ok());
  std::atomic<int> fired{0};
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("r", "sell_and_price", nullptr,
                               [&](const RuleContext&) { ++fired; })
                  .ok());

  // Transaction 1 raises only `sell`, then aborts.
  auto txn1 = db_.Begin();
  auto oid = db_.CreateObject(*txn1, "STOCK");
  Stock s1(&db_, *oid);
  s1.set_current_txn(*txn1);
  s1.sell_stock(10);
  ASSERT_TRUE(db_.Abort(*txn1).ok());

  // Transaction 2 raises only `price`: the AND must NOT complete with the
  // aborted transaction's constituent.
  auto txn2 = db_.Begin();
  auto oid2 = db_.CreateObject(*txn2, "STOCK");
  Stock s2(&db_, *oid2);
  s2.set_current_txn(*txn2);
  s2.set_price(9.0);
  ASSERT_TRUE(db_.Commit(*txn2).ok());
  EXPECT_EQ(fired, 0);

  // Within ONE transaction the AND completes normally.
  auto txn3 = db_.Begin();
  Stock s3(&db_, *oid2);
  s3.set_current_txn(*txn3);
  s3.sell_stock(5);
  s3.set_price(10.0);
  ASSERT_TRUE(db_.Commit(*txn3).ok());
  EXPECT_EQ(fired, 1);
}

TEST_F(ActiveDatabaseTest, DisablingFlushRulesLetsEventsSpanTransactions) {
  ASSERT_TRUE(db_.DeclareEvent("sell", "STOCK", EventModifier::kEnd,
                               "int sell_stock(int qty)")
                  .ok());
  ASSERT_TRUE(db_.DeclareEvent("price", "STOCK", EventModifier::kEnd,
                               "void set_price(float price)")
                  .ok());
  auto sell = db_.detector()->Find("sell");
  auto price = db_.detector()->Find("price");
  ASSERT_TRUE(db_.detector()->DefineAnd("pair", *sell, *price).ok());
  std::atomic<int> fired{0};
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("r", "pair", nullptr,
                               [&](const RuleContext&) { ++fired; })
                  .ok());
  // Paper: "these can be easily modified by deactivating these rules".
  ASSERT_TRUE(db_.rule_manager()
                  ->DisableRule(ActiveDatabase::kFlushOnCommitRule)
                  .ok());

  auto txn1 = db_.Begin();
  auto oid = db_.CreateObject(*txn1, "STOCK");
  Stock s(&db_, *oid);
  s.set_current_txn(*txn1);
  s.sell_stock(10);
  ASSERT_TRUE(db_.Commit(*txn1).ok());

  auto txn2 = db_.Begin();
  s.set_current_txn(*txn2);
  s.set_price(1.0);
  ASSERT_TRUE(db_.Commit(*txn2).ok());
  EXPECT_EQ(fired, 1);  // AND completed across the two transactions
}

TEST_F(ActiveDatabaseTest, DetachedRuleRunsInSeparateTransaction) {
  ASSERT_TRUE(db_.DeclareEvent("e1", "STOCK", EventModifier::kEnd,
                               "int sell_stock(int qty)")
                  .ok());
  std::atomic<storage::TxnId> rule_txn{storage::kInvalidTxnId};
  RuleManager::RuleOptions options;
  options.coupling = CouplingMode::kDetached;
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("r_det", "e1", nullptr,
                               [&](const RuleContext& ctx) {
                                 rule_txn = ctx.txn;
                               },
                               options)
                  .ok());
  auto txn = db_.Begin();
  auto oid = db_.CreateObject(*txn, "STOCK");
  Stock s(&db_, *oid);
  s.set_current_txn(*txn);
  s.sell_stock(1);
  ASSERT_TRUE(db_.Commit(*txn).ok());
  db_.scheduler()->WaitDetached();
  EXPECT_NE(rule_txn.load(), storage::kInvalidTxnId);
  EXPECT_NE(rule_txn.load(), *txn);
}

TEST_F(ActiveDatabaseTest, NestedRuleTriggeringThroughActions) {
  // An action that calls a reactive method triggers further rules, to
  // arbitrary depth (paper §2.2 "Nested rules").
  ASSERT_TRUE(db_.DeclareEvent("sell", "STOCK", EventModifier::kEnd,
                               "int sell_stock(int qty)")
                  .ok());
  ASSERT_TRUE(db_.DeclareEvent("price", "STOCK", EventModifier::kEnd,
                               "void set_price(float price)")
                  .ok());
  std::atomic<int> inner{0};
  std::shared_ptr<Stock> stock;  // created inside the txn below
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("outer", "sell", nullptr,
                               [&](const RuleContext& ctx) {
                                 stock->set_current_txn(ctx.txn);
                                 stock->set_price(1.25);
                               })
                  .ok());
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("inner", "price", nullptr,
                               [&](const RuleContext&) { ++inner; })
                  .ok());
  auto txn = db_.Begin();
  auto oid = db_.CreateObject(*txn, "STOCK");
  stock = std::make_shared<Stock>(&db_, *oid);
  stock->set_current_txn(*txn);
  stock->sell_stock(3);
  EXPECT_EQ(inner, 1);
  EXPECT_GE(db_.scheduler()->max_depth_seen(), 2);
  ASSERT_TRUE(db_.Commit(*txn).ok());
}

TEST_F(ActiveDatabaseTest, PersistentAttributesSurviveReopen) {
  auto txn = db_.Begin();
  auto oid = db_.CreateObject(*txn, "STOCK", "IBM");
  Stock s(&db_, *oid);
  s.set_current_txn(*txn);
  s.set_price(123.5);
  ASSERT_TRUE(db_.Commit(*txn).ok());
  ASSERT_TRUE(db_.Close().ok());

  ActiveDatabase reopened;
  ASSERT_TRUE(reopened.Open(prefix_).ok());
  auto txn2 = reopened.Begin();
  auto found = reopened.database()->names()->Lookup(*txn2, "IBM");
  ASSERT_TRUE(found.ok());
  auto obj = reopened.database()->objects()->Get(*txn2, *found);
  ASSERT_TRUE(obj.ok());
  EXPECT_DOUBLE_EQ(obj->Get("price")->AsDouble(), 123.5);
  ASSERT_TRUE(reopened.Commit(*txn2).ok());
  ASSERT_TRUE(reopened.Close().ok());
}

TEST_F(ActiveDatabaseTest, InMemoryModeSupportsRulesWithoutStorage) {
  ActiveDatabase mem;
  ASSERT_TRUE(mem.OpenInMemory().ok());
  ASSERT_TRUE(
      mem.DeclareEvent("e", "C", EventModifier::kEnd, "void f()").ok());
  std::atomic<int> fired{0};
  ASSERT_TRUE(mem.rule_manager()
                  ->DefineRule("r", "e", nullptr,
                               [&](const RuleContext&) { ++fired; })
                  .ok());
  auto txn = mem.Begin();
  auto params = std::make_shared<detector::ParamList>();
  mem.NotifyMethod("C", 1, EventModifier::kEnd, "void f()", params, *txn);
  EXPECT_EQ(fired, 1);
  ASSERT_TRUE(mem.Commit(*txn).ok());
  ASSERT_TRUE(mem.Close().ok());
}

}  // namespace
}  // namespace sentinel::core
