#include "debug/rule_debugger.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

namespace sentinel::debug {
namespace {

using detector::EventModifier;

class RuleDebuggerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.OpenInMemory().ok());
    debugger_.Attach(&db_);
    ASSERT_TRUE(
        db_.DeclareEvent("sell", "Stock", EventModifier::kEnd, "void sell()")
            .ok());
    ASSERT_TRUE(
        db_.DeclareEvent("price", "Stock", EventModifier::kEnd, "void price()")
            .ok());
  }

  void Fire(const std::string& method) {
    auto params = std::make_shared<detector::ParamList>();
    db_.NotifyMethod("Stock", 1, EventModifier::kEnd, method, params, 1);
  }

  core::ActiveDatabase db_;
  RuleDebugger debugger_;
};

TEST_F(RuleDebuggerTest, TraceRecordsEventsAndRules) {
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("r1", "sell", nullptr,
                               [](const rules::RuleContext&) {})
                  .ok());
  Fire("void sell()");
  EXPECT_EQ(debugger_.event_count(), 1u);
  EXPECT_EQ(debugger_.rule_execution_count(), 1u);
  std::string trace = debugger_.RenderTrace();
  EXPECT_NE(trace.find("Stock.void sell()"), std::string::npos);
  EXPECT_NE(trace.find("rule r1"), std::string::npos);
  EXPECT_NE(trace.find("[fired]"), std::string::npos);
}

TEST_F(RuleDebuggerTest, ConditionFailureVisible) {
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("r1", "sell",
                               [](const rules::RuleContext&) { return false; },
                               [](const rules::RuleContext&) {})
                  .ok());
  Fire("void sell()");
  EXPECT_NE(debugger_.RenderTrace().find("[condition false]"),
            std::string::npos);
}

TEST_F(RuleDebuggerTest, NestedTriggeringAppearsInInteractionGraph) {
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("outer", "sell", nullptr,
                               [this](const rules::RuleContext&) {
                                 auto params =
                                     std::make_shared<detector::ParamList>();
                                 db_.detector()->Notify("Stock", 1,
                                                        EventModifier::kEnd,
                                                        "void price()", params,
                                                        1);
                               })
                  .ok());
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("inner", "price", nullptr,
                               [](const rules::RuleContext&) {})
                  .ok());
  Fire("void sell()");
  std::string dot = debugger_.RuleInteractionDot();
  EXPECT_NE(dot.find("\"outer\" -> \"inner\""), std::string::npos) << dot;
}

TEST_F(RuleDebuggerTest, EventGraphDotShowsStructure) {
  auto sell = db_.detector()->Find("sell");
  auto price = db_.detector()->Find("price");
  ASSERT_TRUE(db_.detector()->DefineAnd("pair", *sell, *price).ok());
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("r", "pair", nullptr,
                               [](const rules::RuleContext&) {})
                  .ok());
  std::string dot = RuleDebugger::EventGraphDot(&db_);
  EXPECT_NE(dot.find("digraph event_graph"), std::string::npos);
  EXPECT_NE(dot.find("\"sell\" -> \"pair\""), std::string::npos);
  EXPECT_NE(dot.find("\"price\" -> \"pair\""), std::string::npos);
  EXPECT_NE(dot.find("AND"), std::string::npos);
  EXPECT_NE(dot.find("subscriber"), std::string::npos);
}

TEST_F(RuleDebuggerTest, ClearResetsTrace) {
  Fire("void sell()");
  EXPECT_GT(debugger_.event_count(), 0u);
  debugger_.Clear();
  EXPECT_EQ(debugger_.event_count(), 0u);
  EXPECT_EQ(debugger_.rule_execution_count(), 0u);
}

}  // namespace
}  // namespace sentinel::debug
