#include "preproc/compiler.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "core/reactive.h"

namespace sentinel::preproc {
namespace {

using detector::EventModifier;

class SpecCompilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = (std::filesystem::temp_directory_path() /
               ("sentinel_preproc_test_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                  .string();
    Cleanup();
    ASSERT_TRUE(db_.Open(prefix_).ok());
  }
  void TearDown() override {
    (void)db_.Close();
    Cleanup();
  }
  void Cleanup() {
    std::remove((prefix_ + ".db").c_str());
    std::remove((prefix_ + ".wal").c_str());
  }

  std::string prefix_;
  core::ActiveDatabase db_;
  FunctionRegistry functions_;
};

constexpr char kStockSpec[] = R"spec(
  class STOCK : REACTIVE {
    attr price: double;
    event end(e1) int sell_stock(int qty);
    event begin(e2) && end(e3) void set_price(float price);
    event e4 = e1 ^ e2;
    rule R1(e4, cond1, action1, RECENT, IMMEDIATE, 10, NOW);
  }
)spec";

TEST_F(SpecCompilerTest, InstallsPaperStockSpec) {
  std::atomic<int> fired{0};
  functions_.RegisterCondition("cond1",
                               [](const rules::RuleContext&) { return true; });
  functions_.RegisterAction("action1",
                            [&](const rules::RuleContext&) { ++fired; });
  SpecCompiler compiler(&db_, &functions_);
  ASSERT_TRUE(compiler.LoadString(kStockSpec).ok());

  // Schema registered.
  EXPECT_TRUE(db_.database()->classes()->Exists("STOCK"));
  // Events defined.
  EXPECT_TRUE(db_.detector()->Exists("e1"));
  EXPECT_TRUE(db_.detector()->Exists("e2"));
  EXPECT_TRUE(db_.detector()->Exists("e3"));
  EXPECT_TRUE(db_.detector()->Exists("e4"));
  // Rule defined.
  auto rule = db_.rule_manager()->Find("R1");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ((*rule)->priority(), 10);

  // End-to-end: invoke the methods, rule fires on e1 ^ e2.
  auto txn = db_.Begin();
  auto params = std::make_shared<detector::ParamList>();
  db_.NotifyMethod("STOCK", 1, EventModifier::kEnd, "int sell_stock(int qty)",
                   params, *txn);
  db_.NotifyMethod("STOCK", 1, EventModifier::kBegin,
                   "void set_price(float price)", params, *txn);
  EXPECT_EQ(fired, 1);
  ASSERT_TRUE(db_.Commit(*txn).ok());
}

TEST_F(SpecCompilerTest, DuplicateNamedEventRejected) {
  SpecCompiler compiler(&db_, &functions_);
  ASSERT_TRUE(compiler.LoadString(R"spec(event a = end("C", "void f()");)spec").ok());
  EXPECT_TRUE(compiler.LoadString(R"spec(event a = end("C", "void g()");)spec")
                  .IsAlreadyExists());
}

TEST_F(SpecCompilerTest, AnonymousSubexpressionSharing) {
  functions_.RegisterAction("noop1", [](const rules::RuleContext&) {});
  SpecCompiler compiler(&db_, &functions_);
  ASSERT_TRUE(compiler
                  .LoadString(R"spec(
    event a = end("C", "void f()");
    event b = end("C", "void g()");
    event c = end("C", "void h()");
  )spec")
                  .ok());
  const std::size_t base = db_.detector()->node_count();
  ASSERT_TRUE(compiler.LoadString("event x = (a ^ b) then c;").ok());
  const std::size_t after_x = db_.detector()->node_count();
  EXPECT_EQ(after_x, base + 2);  // anonymous (a^b) + named x
  // A second expression over the same sub-expression adds only its new top.
  ASSERT_TRUE(compiler.LoadString("event y = (a ^ b) | c;").ok());
  EXPECT_EQ(db_.detector()->node_count(), after_x + 1);
}

TEST_F(SpecCompilerTest, InstanceLevelEventResolvesNameBinding) {
  // Bind "IBM" first, then install an instance-level event on it.
  auto txn = db_.Begin();
  ASSERT_TRUE(db_.database()
                  ->classes()
                  ->Register(oodb::ClassDef("Stock", ""))
                  .ok());
  auto oid = db_.CreateObject(*txn, "Stock", "IBM");
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(db_.Commit(*txn).ok());

  SpecCompiler compiler(&db_, &functions_);
  ASSERT_TRUE(compiler
                  .LoadString(
                      R"spec(event set_IBM_price =
                           begin("Stock":"IBM", "void set_price(float p)");)spec")
                  .ok());
  std::atomic<int> fired{0};
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("r", "set_IBM_price", nullptr,
                               [&](const rules::RuleContext&) { ++fired; })
                  .ok());
  auto txn2 = db_.Begin();
  auto params = std::make_shared<detector::ParamList>();
  db_.NotifyMethod("Stock", *oid, EventModifier::kBegin,
                   "void set_price(float p)", params, *txn2);
  db_.NotifyMethod("Stock", *oid + 999, EventModifier::kBegin,
                   "void set_price(float p)", params, *txn2);
  ASSERT_TRUE(db_.Commit(*txn2).ok());
  EXPECT_EQ(fired, 1);  // only the IBM instance triggers
}

TEST_F(SpecCompilerTest, UnknownFunctionNameFails) {
  SpecCompiler compiler(&db_, &functions_);
  Status st = compiler.LoadString(R"spec(
    event a = end("C", "void f()");
    rule R(a, no_such_cond, no_such_action);
  )spec");
  EXPECT_TRUE(st.IsNotFound());
}

TEST_F(SpecCompilerTest, LoadFileWorks) {
  const std::string path = prefix_ + ".spec";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("event a = end(\"C\", \"void f()\");\n", f);
    std::fclose(f);
  }
  SpecCompiler compiler(&db_, &functions_);
  EXPECT_TRUE(compiler.LoadFile(path).ok());
  EXPECT_TRUE(db_.detector()->Exists("a"));
  EXPECT_TRUE(compiler.LoadFile(path + ".missing").IsIOError());
  std::remove(path.c_str());
}

TEST_F(SpecCompilerTest, GenerateCppMirrorsPaperOutput) {
  auto spec = snoop::Parser::Parse(kStockSpec);
  ASSERT_TRUE(spec.ok());
  std::string code = SpecCompiler::GenerateCpp(*spec);
  // Wrapper shape from §3.2.1.
  EXPECT_NE(code.find("PARA_LIST* para_list = new PARA_LIST()"),
            std::string::npos);
  EXPECT_NE(code.find(
                "Notify(this, \"STOCK\", \"void set_price(float price)\", "
                "\"begin\", para_list);"),
            std::string::npos);
  EXPECT_NE(code.find("user_void set_price(float price);"), std::string::npos);
  // Graph construction from §3.2.2.
  EXPECT_NE(code.find("new LOCAL_EVENT_DETECTOR()"), std::string::npos);
  EXPECT_NE(code.find("new PRIMITIVE(\"e1\", \"STOCK\", \"end\", "
                      "\"int sell_stock(int qty)\")"),
            std::string::npos);
  EXPECT_NE(code.find("new RULE(\"R1\", e4, cond1, action1);"),
            std::string::npos);
}

}  // namespace
}  // namespace sentinel::preproc
