#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "preproc/compiler.h"

namespace sentinel::preproc {
namespace {

using detector::EventModifier;

class SpecPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = (std::filesystem::temp_directory_path() /
               ("sentinel_specpersist_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                  .string();
    Cleanup();
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    std::remove((prefix_ + ".db").c_str());
    std::remove((prefix_ + ".wal").c_str());
  }
  std::string prefix_;
};

TEST_F(SpecPersistenceTest, PersistedSpecReloadsAfterReopen) {
  std::atomic<int> fired{0};
  FunctionRegistry functions;
  functions.RegisterAction("count",
                           [&](const rules::RuleContext&) { ++fired; });

  // Session 1: define + persist.
  {
    core::ActiveDatabase db;
    ASSERT_TRUE(db.Open(prefix_).ok());
    SpecCompiler compiler(&db, &functions);
    ASSERT_TRUE(compiler
                    .InstallAndPersist(R"spec(
      class Sensor : REACTIVE {
        event end(reading) void report(int v);
        rule R_alert(reading, true, count, RECENT, IMMEDIATE);
      }
    )spec")
                    .ok());
    auto txn = db.Begin();
    auto params = std::make_shared<detector::ParamList>();
    db.NotifyMethod("Sensor", 1, EventModifier::kEnd, "void report(int v)",
                    params, *txn);
    ASSERT_TRUE(db.Commit(*txn).ok());
    EXPECT_EQ(fired, 1);
    ASSERT_TRUE(db.Close().ok());
  }

  // Session 2: nothing defined until LoadPersisted, then the rule is back.
  {
    core::ActiveDatabase db;
    ASSERT_TRUE(db.Open(prefix_).ok());
    EXPECT_FALSE(db.detector()->Exists("reading"));
    SpecCompiler compiler(&db, &functions);
    ASSERT_TRUE(compiler.LoadPersisted().ok());
    EXPECT_TRUE(db.detector()->Exists("reading"));
    ASSERT_TRUE(db.rule_manager()->Find("R_alert").ok());

    auto txn = db.Begin();
    auto params = std::make_shared<detector::ParamList>();
    db.NotifyMethod("Sensor", 1, EventModifier::kEnd, "void report(int v)",
                    params, *txn);
    ASSERT_TRUE(db.Commit(*txn).ok());
    EXPECT_EQ(fired, 2);
    ASSERT_TRUE(db.Close().ok());
  }
}

TEST_F(SpecPersistenceTest, MultipleSpecsReloadInDefinitionOrder) {
  FunctionRegistry functions;
  {
    core::ActiveDatabase db;
    ASSERT_TRUE(db.Open(prefix_).ok());
    SpecCompiler compiler(&db, &functions);
    // Second spec references the first's event: order matters.
    ASSERT_TRUE(
        compiler.InstallAndPersist(R"spec(event a = end("C", "void f()");)spec")
            .ok());
    ASSERT_TRUE(
        compiler.InstallAndPersist(R"spec(event b = a ^ a;)spec").ok());
    ASSERT_TRUE(db.Close().ok());
  }
  core::ActiveDatabase db;
  ASSERT_TRUE(db.Open(prefix_).ok());
  SpecCompiler compiler(&db, &functions);
  ASSERT_TRUE(compiler.LoadPersisted().ok());
  EXPECT_TRUE(db.detector()->Exists("a"));
  EXPECT_TRUE(db.detector()->Exists("b"));
  ASSERT_TRUE(db.Close().ok());
}

TEST_F(SpecPersistenceTest, InMemoryModeRejectsPersistence) {
  core::ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  FunctionRegistry functions;
  SpecCompiler compiler(&db, &functions);
  EXPECT_TRUE(compiler.InstallAndPersist("event a = end(\"C\", \"void f()\");")
                  .IsInvalidArgument());
  EXPECT_TRUE(compiler.LoadPersisted().IsInvalidArgument());
  ASSERT_TRUE(db.Close().ok());
}

TEST_F(SpecPersistenceTest, BadSpecIsNotPersisted) {
  FunctionRegistry functions;
  {
    core::ActiveDatabase db;
    ASSERT_TRUE(db.Open(prefix_).ok());
    SpecCompiler compiler(&db, &functions);
    EXPECT_FALSE(compiler.InstallAndPersist("event broken =;").ok());
    ASSERT_TRUE(db.Close().ok());
  }
  core::ActiveDatabase db;
  ASSERT_TRUE(db.Open(prefix_).ok());
  SpecCompiler compiler(&db, &functions);
  ASSERT_TRUE(compiler.LoadPersisted().ok());  // nothing stored, no error
  ASSERT_TRUE(db.Close().ok());
}

}  // namespace
}  // namespace sentinel::preproc
