#include <gtest/gtest.h>

#include <memory>

#include "detector/local_detector.h"
#include "detector_test_util.h"
#include "oodb/schema.h"

namespace sentinel::detector {
namespace {

class PrimitiveDetectionTest : public ::testing::Test {
 protected:
  LocalEventDetector det_;
  RecordingSink sink_;
};

TEST_F(PrimitiveDetectionTest, EndMethodEventFires) {
  ASSERT_TRUE(det_.DefinePrimitive("e1", "STOCK", EventModifier::kEnd,
                                   "int sell_stock(int qty)")
                  .ok());
  ASSERT_TRUE(det_.Subscribe("e1", &sink_, ParamContext::kRecent).ok());
  Fire(&det_, "STOCK", "int sell_stock(int qty)", 5);
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.event_name, "e1");
  EXPECT_EQ(sink_.hits[0].occurrence.constituents.size(), 1u);
  auto v = sink_.hits[0].occurrence.Param("v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 5);
}

TEST_F(PrimitiveDetectionTest, ModifierMustMatch) {
  ASSERT_TRUE(det_.DefinePrimitive("e_begin", "STOCK", EventModifier::kBegin,
                                   "void set_price(float price)")
                  .ok());
  ASSERT_TRUE(det_.Subscribe("e_begin", &sink_, ParamContext::kRecent).ok());
  Fire(&det_, "STOCK", "void set_price(float price)", 1, 1, 100,
       EventModifier::kEnd);
  EXPECT_TRUE(sink_.hits.empty());
  Fire(&det_, "STOCK", "void set_price(float price)", 1, 1, 100,
       EventModifier::kBegin);
  EXPECT_EQ(sink_.hits.size(), 1u);
}

TEST_F(PrimitiveDetectionTest, MethodSignatureMustMatch) {
  ASSERT_TRUE(det_.DefinePrimitive("e1", "STOCK", EventModifier::kEnd,
                                   "int sell_stock(int qty)")
                  .ok());
  ASSERT_TRUE(det_.Subscribe("e1", &sink_, ParamContext::kRecent).ok());
  Fire(&det_, "STOCK", "void set_price(float price)", 1);
  EXPECT_TRUE(sink_.hits.empty());
}

TEST_F(PrimitiveDetectionTest, ClassMustMatch) {
  ASSERT_TRUE(det_.DefinePrimitive("e1", "STOCK", EventModifier::kEnd,
                                   "int sell_stock(int qty)")
                  .ok());
  ASSERT_TRUE(det_.Subscribe("e1", &sink_, ParamContext::kRecent).ok());
  Fire(&det_, "BOND", "int sell_stock(int qty)", 1);
  EXPECT_TRUE(sink_.hits.empty());
}

TEST_F(PrimitiveDetectionTest, InstanceLevelEventFiltersOnOid) {
  // Paper §3.1: set_IBM_price fires only for the IBM object; any_stk_price
  // fires for every instance of the class.
  ASSERT_TRUE(det_.DefinePrimitive("any_stk_price", "Stock",
                                   EventModifier::kBegin,
                                   "void set_price(float price)")
                  .ok());
  ASSERT_TRUE(det_.DefinePrimitive("set_IBM_price", "Stock",
                                   EventModifier::kBegin,
                                   "void set_price(float price)",
                                   /*instance=*/42)
                  .ok());
  RecordingSink class_sink, instance_sink;
  ASSERT_TRUE(
      det_.Subscribe("any_stk_price", &class_sink, ParamContext::kRecent).ok());
  ASSERT_TRUE(
      det_.Subscribe("set_IBM_price", &instance_sink, ParamContext::kRecent)
          .ok());

  Fire(&det_, "Stock", "void set_price(float price)", 1, 1, /*oid=*/42,
       EventModifier::kBegin);
  Fire(&det_, "Stock", "void set_price(float price)", 2, 1, /*oid=*/7,
       EventModifier::kBegin);

  EXPECT_EQ(class_sink.hits.size(), 2u);
  EXPECT_EQ(instance_sink.hits.size(), 1u);
  EXPECT_EQ(instance_sink.hits[0].occurrence.constituents[0]->oid, 42u);
}

TEST_F(PrimitiveDetectionTest, ClassLevelEventAppliesToSubclasses) {
  oodb::ClassRegistry registry;
  ASSERT_TRUE(registry.Register(oodb::ClassDef("Stock", "")).ok());
  ASSERT_TRUE(registry.Register(oodb::ClassDef("TechStock", "Stock")).ok());
  det_.set_class_registry(&registry);

  ASSERT_TRUE(det_.DefinePrimitive("e1", "Stock", EventModifier::kEnd,
                                   "int sell_stock(int qty)")
                  .ok());
  ASSERT_TRUE(det_.Subscribe("e1", &sink_, ParamContext::kRecent).ok());
  Fire(&det_, "TechStock", "int sell_stock(int qty)", 1);
  EXPECT_EQ(sink_.hits.size(), 1u);
  // But not the other direction: an event on the subclass does not fire for
  // base-class instances.
  ASSERT_TRUE(det_.DefinePrimitive("e_sub", "TechStock", EventModifier::kEnd,
                                   "int sell_stock(int qty)")
                  .ok());
  RecordingSink sub_sink;
  ASSERT_TRUE(det_.Subscribe("e_sub", &sub_sink, ParamContext::kRecent).ok());
  Fire(&det_, "Stock", "int sell_stock(int qty)", 1);
  EXPECT_TRUE(sub_sink.hits.empty());
}

TEST_F(PrimitiveDetectionTest, UnsubscribedContextDoesNotFire) {
  ASSERT_TRUE(det_.DefinePrimitive("e1", "STOCK", EventModifier::kEnd,
                                   "int sell_stock(int qty)")
                  .ok());
  // No subscription at all: the node has no active context.
  Fire(&det_, "STOCK", "int sell_stock(int qty)", 1);
  EXPECT_TRUE(sink_.hits.empty());
}

TEST_F(PrimitiveDetectionTest, UnsubscribeStopsDelivery) {
  ASSERT_TRUE(det_.DefinePrimitive("e1", "STOCK", EventModifier::kEnd,
                                   "int sell_stock(int qty)")
                  .ok());
  ASSERT_TRUE(det_.Subscribe("e1", &sink_, ParamContext::kRecent).ok());
  Fire(&det_, "STOCK", "int sell_stock(int qty)", 1);
  ASSERT_TRUE(det_.Unsubscribe("e1", &sink_, ParamContext::kRecent).ok());
  Fire(&det_, "STOCK", "int sell_stock(int qty)", 2);
  EXPECT_EQ(sink_.hits.size(), 1u);
}

TEST_F(PrimitiveDetectionTest, ExplicitEvents) {
  ASSERT_TRUE(det_.DefineExplicit("user_alert").ok());
  ASSERT_TRUE(det_.Subscribe("user_alert", &sink_, ParamContext::kRecent).ok());
  auto params = std::make_shared<ParamList>();
  params->Insert("msg", oodb::Value::String("hello"));
  ASSERT_TRUE(det_.RaiseExplicit("user_alert", params, 1).ok());
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Param("msg")->AsString(), "hello");
  EXPECT_TRUE(det_.RaiseExplicit("no_such_event", nullptr, 1).IsNotFound());
}

TEST_F(PrimitiveDetectionTest, SuppressScopeBlocksSignaling) {
  ASSERT_TRUE(det_.DefinePrimitive("e1", "STOCK", EventModifier::kEnd,
                                   "int sell_stock(int qty)")
                  .ok());
  ASSERT_TRUE(det_.Subscribe("e1", &sink_, ParamContext::kRecent).ok());
  {
    LocalEventDetector::SuppressScope guard;
    Fire(&det_, "STOCK", "int sell_stock(int qty)", 1);
    EXPECT_TRUE(sink_.hits.empty());
  }
  Fire(&det_, "STOCK", "int sell_stock(int qty)", 2);
  EXPECT_EQ(sink_.hits.size(), 1u);
}

TEST_F(PrimitiveDetectionTest, DuplicateDefinitionRejected) {
  ASSERT_TRUE(det_.DefinePrimitive("e1", "STOCK", EventModifier::kEnd,
                                   "int sell_stock(int qty)")
                  .ok());
  EXPECT_TRUE(det_.DefinePrimitive("e1", "STOCK", EventModifier::kEnd,
                                   "int sell_stock(int qty)")
                  .status()
                  .IsAlreadyExists());
}

TEST_F(PrimitiveDetectionTest, TimestampsAreMonotone) {
  ASSERT_TRUE(det_.DefinePrimitive("e1", "STOCK", EventModifier::kEnd,
                                   "int sell_stock(int qty)")
                  .ok());
  ASSERT_TRUE(det_.Subscribe("e1", &sink_, ParamContext::kRecent).ok());
  for (int i = 0; i < 5; ++i) Fire(&det_, "STOCK", "int sell_stock(int qty)", i);
  ASSERT_EQ(sink_.hits.size(), 5u);
  for (std::size_t i = 1; i < sink_.hits.size(); ++i) {
    EXPECT_LT(sink_.hits[i - 1].occurrence.t_end,
              sink_.hits[i].occurrence.t_start);
  }
}

}  // namespace
}  // namespace sentinel::detector
