#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/active_database.h"

namespace sentinel::core {
namespace {

using detector::EventModifier;
using rules::RuleContext;

class MetaRulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.OpenInMemory().ok());
    ASSERT_TRUE(
        db_.DeclareEvent("e", "C", EventModifier::kEnd, "void f()").ok());
    ASSERT_TRUE(db_.DeclareEvent("any_rule_fired", ActiveDatabase::kRuleClass,
                                 EventModifier::kEnd,
                                 ActiveDatabase::kRuleFiredMethod)
                    .ok());
  }

  void Fire(storage::TxnId txn) {
    auto params = std::make_shared<detector::ParamList>();
    db_.NotifyMethod("C", 1, EventModifier::kEnd, "void f()", params, txn);
  }

  ActiveDatabase db_;
};

TEST_F(MetaRulesTest, DisabledByDefault) {
  std::atomic<int> meta{0};
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("base", "e", nullptr, [](const RuleContext&) {})
                  .ok());
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("meta", "any_rule_fired", nullptr,
                               [&](const RuleContext&) { ++meta; })
                  .ok());
  auto txn = db_.Begin();
  Fire(*txn);
  ASSERT_TRUE(db_.Commit(*txn).ok());
  EXPECT_EQ(meta, 0);
}

TEST_F(MetaRulesTest, MetaRuleSeesRuleExecutions) {
  db_.set_rule_events_enabled(true);
  std::atomic<int> base{0};
  std::atomic<int> meta{0};
  std::string last_rule;
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("base", "e", nullptr,
                               [&](const RuleContext&) { ++base; })
                  .ok());
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("meta", "any_rule_fired", nullptr,
                               [&](const RuleContext& ctx) {
                                 ++meta;
                                 last_rule = ctx.Param("rule")->AsString();
                               })
                  .ok());
  auto txn = db_.Begin();
  Fire(*txn);
  ASSERT_TRUE(db_.Commit(*txn).ok());
  EXPECT_EQ(base, 1);
  // The flush rules also execute at commit: meta sees base + flush rule.
  EXPECT_GE(meta, 1);
  EXPECT_TRUE(last_rule == "base" ||
              last_rule == ActiveDatabase::kFlushOnCommitRule)
      << last_rule;
}

TEST_F(MetaRulesTest, ConditionOutcomeIsVisible) {
  db_.set_rule_events_enabled(true);
  std::atomic<int> held{0}, rejected{0};
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("base", "e",
                               [](const RuleContext&) { return false; },
                               [](const RuleContext&) {})
                  .ok());
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("meta", "any_rule_fired", nullptr,
                               [&](const RuleContext& ctx) {
                                 if (ctx.Param("rule")->AsString() != "base") {
                                   return;
                                 }
                                 if (ctx.Param("condition_held")->AsBool()) {
                                   ++held;
                                 } else {
                                   ++rejected;
                                 }
                               })
                  .ok());
  auto txn = db_.Begin();
  Fire(*txn);
  ASSERT_TRUE(db_.Commit(*txn).ok());
  EXPECT_EQ(held, 0);
  EXPECT_EQ(rejected, 1);
}

TEST_F(MetaRulesTest, MetaRulesDoNotRecurse) {
  db_.set_rule_events_enabled(true);
  std::atomic<int> meta{0};
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("base", "e", nullptr, [](const RuleContext&) {})
                  .ok());
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("meta", "any_rule_fired", nullptr,
                               [&](const RuleContext&) { ++meta; })
                  .ok());
  auto txn = db_.Begin();
  Fire(*txn);
  Fire(*txn);
  ASSERT_TRUE(db_.Commit(*txn).ok());
  // meta fired for base twice + flush rule once; its own executions raised
  // no further RULE events (guard), so the count is bounded.
  EXPECT_GE(meta, 2);
  EXPECT_LE(meta, 3);
}

}  // namespace
}  // namespace sentinel::core
