// Fine-grained context semantics for NOT and A (the operator × context
// combinations not pinned down by detector_operators_test.cc), plus
// parameter-propagation assertions on composite occurrences.

#include <gtest/gtest.h>

#include "detector/local_detector.h"
#include "detector_test_util.h"

namespace sentinel::detector {
namespace {

class ContextMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = *det_.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
    b_ = *det_.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
    c_ = *det_.DefinePrimitive("c", "C", EventModifier::kEnd, "void fc()");
  }
  void FireA(int v = 0) { Fire(&det_, "C", "void fa()", v); }
  void FireB(int v = 0) { Fire(&det_, "C", "void fb()", v); }
  void FireC(int v = 0) { Fire(&det_, "C", "void fc()", v); }

  LocalEventDetector det_;
  EventNode* a_ = nullptr;
  EventNode* b_ = nullptr;
  EventNode* c_ = nullptr;
  RecordingSink sink_;
};

// ---- NOT across contexts ------------------------------------------------------

TEST_F(ContextMatrixTest, NotChronicleConsumesInitiator) {
  ASSERT_TRUE(det_.DefineNot("n", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("n", &sink_, ParamContext::kChronicle).ok());
  FireA(1);
  FireC(2);  // detects (a1, c2), consumes a1
  FireC(3);  // no initiator left
  EXPECT_EQ(sink_.hits.size(), 1u);
}

TEST_F(ContextMatrixTest, NotRecentKeepsInitiator) {
  ASSERT_TRUE(det_.DefineNot("n", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("n", &sink_, ParamContext::kRecent).ok());
  FireA(1);
  FireC(2);
  FireC(3);  // recent initiator still valid
  EXPECT_EQ(sink_.hits.size(), 2u);
}

TEST_F(ContextMatrixTest, NotContinuousFiresPerSurvivingInitiator) {
  ASSERT_TRUE(det_.DefineNot("n", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("n", &sink_, ParamContext::kContinuous).ok());
  FireA(1);
  FireA(2);
  FireC(9);  // both windows close without a canceller
  EXPECT_EQ(sink_.hits.size(), 2u);
  sink_.Clear();
  FireA(3);
  FireB(4);  // cancels
  FireC(5);
  EXPECT_TRUE(sink_.hits.empty());
}

TEST_F(ContextMatrixTest, NotCumulativeGroupsSurvivors) {
  ASSERT_TRUE(det_.DefineNot("n", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("n", &sink_, ParamContext::kCumulative).ok());
  FireA(1);
  FireA(2);
  FireC(9);
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Of("a").size(), 2u);
}

TEST_F(ContextMatrixTest, NotCancellerOnlyKillsPrecedingWindows) {
  ASSERT_TRUE(det_.DefineNot("n", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("n", &sink_, ParamContext::kContinuous).ok());
  FireB(1);  // canceller before any window: no effect
  FireA(2);
  FireC(3);
  EXPECT_EQ(sink_.hits.size(), 1u);
}

// ---- A across contexts --------------------------------------------------------

TEST_F(ContextMatrixTest, AperiodicChronicleUsesOldestOpenWindow) {
  ASSERT_TRUE(det_.DefineAperiodic("ap", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("ap", &sink_, ParamContext::kChronicle).ok());
  FireA(1);
  FireA(2);
  FireB(9);
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Of("a")[0]->params->Get("v")->AsInt(), 1);
  // Window stays open: another b detects again.
  FireB(10);
  EXPECT_EQ(sink_.hits.size(), 2u);
}

TEST_F(ContextMatrixTest, AperiodicRecentUsesNewestOpenWindow) {
  ASSERT_TRUE(det_.DefineAperiodic("ap", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("ap", &sink_, ParamContext::kRecent).ok());
  FireA(1);
  FireA(2);  // replaces
  FireB(9);
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Of("a")[0]->params->Get("v")->AsInt(), 2);
}

TEST_F(ContextMatrixTest, AperiodicCloserEndsDetection) {
  ASSERT_TRUE(det_.DefineAperiodic("ap", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("ap", &sink_, ParamContext::kContinuous).ok());
  FireA(1);
  FireB(2);
  FireC(3);  // closes
  FireB(4);
  EXPECT_EQ(sink_.hits.size(), 1u);
}

// ---- A* window/context interplay ------------------------------------------------

TEST_F(ContextMatrixTest, AStarRecentRestartDropsAccumulation) {
  ASSERT_TRUE(det_.DefineAperiodicStar("as", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("as", &sink_, ParamContext::kRecent).ok());
  FireA(1);
  FireB(2);
  FireA(3);  // RECENT restart: accumulation (b=2) is dropped
  FireB(4);
  FireC(5);
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Of("b").size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Of("b")[0]->params->Get("v")->AsInt(), 4);
}

TEST_F(ContextMatrixTest, AStarCumulativeKeepsAccumulationAcrossOpeners) {
  ASSERT_TRUE(det_.DefineAperiodicStar("as", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("as", &sink_, ParamContext::kCumulative).ok());
  FireA(1);
  FireB(2);
  FireA(3);  // additional opener, accumulation continues
  FireB(4);
  FireC(5);
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Of("b").size(), 2u);
}

// ---- Parameter propagation through composites -------------------------------------

TEST_F(ContextMatrixTest, CompositeOccurrenceCarriesAllConstituentParams) {
  auto and_node = det_.DefineAnd("ab", a_, b_);
  ASSERT_TRUE(and_node.ok());
  ASSERT_TRUE(det_.DefineSeq("abc", *and_node, c_).ok());
  ASSERT_TRUE(det_.Subscribe("abc", &sink_, ParamContext::kRecent).ok());
  FireA(10);
  FireB(20);
  FireC(30);
  ASSERT_EQ(sink_.hits.size(), 1u);
  const Occurrence& occ = sink_.hits[0].occurrence;
  ASSERT_EQ(occ.constituents.size(), 3u);
  EXPECT_EQ(occ.Of("a")[0]->params->Get("v")->AsInt(), 10);
  EXPECT_EQ(occ.Of("b")[0]->params->Get("v")->AsInt(), 20);
  EXPECT_EQ(occ.Of("c")[0]->params->Get("v")->AsInt(), 30);
  // Occurrence::Param resolves from the newest constituent backwards.
  EXPECT_EQ(occ.Param("v")->AsInt(), 30);
  // Interval spans first to last constituent.
  EXPECT_EQ(occ.t_start, occ.Of("a")[0]->at);
  EXPECT_EQ(occ.t_end, occ.Of("c")[0]->at);
}

TEST_F(ContextMatrixTest, ParameterListsAreSharedNotCopied) {
  // The same underlying PrimitiveOccurrence object is referenced by every
  // composite built from it (paper §3.2.2 item 2: pointers, no copying).
  auto and1 = det_.DefineAnd("ab", a_, b_);
  auto and2 = det_.DefineAnd("ac", a_, c_);
  ASSERT_TRUE(and1.ok());
  ASSERT_TRUE(and2.ok());
  RecordingSink s1, s2;
  ASSERT_TRUE(det_.Subscribe("ab", &s1, ParamContext::kRecent).ok());
  ASSERT_TRUE(det_.Subscribe("ac", &s2, ParamContext::kRecent).ok());
  FireA(1);
  FireB(2);
  FireC(3);
  ASSERT_EQ(s1.hits.size(), 1u);
  ASSERT_EQ(s2.hits.size(), 1u);
  EXPECT_EQ(s1.hits[0].occurrence.Of("a")[0].get(),
            s2.hits[0].occurrence.Of("a")[0].get());
}

}  // namespace
}  // namespace sentinel::detector
