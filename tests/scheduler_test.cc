#include "rules/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "rules/thread_pool.h"

namespace sentinel::rules {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { ++done; });
  }
  pool.WaitIdle();
  EXPECT_EQ(done, 100);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      int now = ++concurrent;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      --concurrent;
    });
  }
  pool.WaitIdle();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
}

TEST(ThreadPoolTest, ZeroWorkersClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.WaitIdle();
  EXPECT_TRUE(ran);
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : scheduler_(&nested_, nullptr,
                   RuleScheduler::Options{SchedulingPolicy::kSerial, 2}) {}

  Firing MakeFiring(Rule* rule, int priority, storage::TxnId txn = 1) {
    Firing f;
    f.rule = rule;
    f.txn = txn;
    f.priority_path = {priority};
    return f;
  }

  txn::NestedTransactionManager nested_;
  RuleScheduler scheduler_;
};

TEST_F(SchedulerTest, DrainOnEmptyQueueReturns) {
  scheduler_.Drain();
  EXPECT_EQ(scheduler_.executed_count(), 0u);
}

TEST_F(SchedulerTest, SerialPolicyOrdersByPriority) {
  std::vector<int> order;
  std::mutex mu;
  std::vector<std::unique_ptr<Rule>> rules;
  for (int p : {2, 7, 5, 7, 1}) {
    rules.push_back(std::make_unique<Rule>(
        "r" + std::to_string(static_cast<int>(rules.size())), "e", nullptr,
        [&order, &mu, p](const RuleContext&) {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(p);
        }));
    rules.back()->set_priority(p);
    scheduler_.Enqueue(MakeFiring(rules.back().get(), p));
  }
  scheduler_.Drain();
  EXPECT_EQ(order, (std::vector<int>{7, 7, 5, 2, 1}));
  EXPECT_EQ(scheduler_.executed_count(), 5u);
}

TEST_F(SchedulerTest, DeeperPathPreemptsSiblingOfEqualPriority) {
  // Path {5,3} (a nested rule under priority-5) must run before {5}'s
  // sibling {4} and before {5} itself if both pending.
  std::vector<std::string> order;
  std::mutex mu;
  auto mk = [&](const std::string& name) {
    auto rule = std::make_unique<Rule>(name, "e", nullptr,
                                       [&order, &mu, name](const RuleContext&) {
                                         std::lock_guard<std::mutex> lock(mu);
                                         order.push_back(name);
                                       });
    return rule;
  };
  auto nested = mk("nested"), sibling = mk("sibling");
  Firing deep;
  deep.rule = nested.get();
  deep.priority_path = {5, 3};
  deep.depth = 2;
  Firing shallow;
  shallow.rule = sibling.get();
  shallow.priority_path = {4};
  scheduler_.Enqueue(shallow);
  scheduler_.Enqueue(deep);
  scheduler_.Drain();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "nested");
  EXPECT_EQ(order[1], "sibling");
}

TEST_F(SchedulerTest, DisabledRuleSkipped) {
  auto rule = std::make_unique<Rule>("r", "e", nullptr,
                                     [](const RuleContext&) { FAIL(); });
  rule->set_enabled(false);
  scheduler_.Enqueue(MakeFiring(rule.get(), 1));
  scheduler_.Drain();
  EXPECT_EQ(scheduler_.executed_count(), 0u);
}

TEST_F(SchedulerTest, ObserverSeesExecutions) {
  std::atomic<int> observed{0};
  std::atomic<int> held{0};
  scheduler_.SetExecutionObserver(
      [&](const Firing&, bool condition_held, Status) {
        ++observed;
        if (condition_held) ++held;
      });
  auto yes = std::make_unique<Rule>("yes", "e", nullptr,
                                    [](const RuleContext&) {});
  auto no = std::make_unique<Rule>(
      "no", "e", [](const RuleContext&) { return false; },
      [](const RuleContext&) {});
  scheduler_.Enqueue(MakeFiring(yes.get(), 1));
  scheduler_.Enqueue(MakeFiring(no.get(), 1));
  scheduler_.Drain();
  EXPECT_EQ(observed, 2);
  EXPECT_EQ(held, 1);
  EXPECT_EQ(scheduler_.condition_rejections(), 1u);
}

TEST_F(SchedulerTest, PriorityClassesRunEqualPathsTogether) {
  RuleScheduler scheduler(
      &nested_, nullptr,
      RuleScheduler::Options{SchedulingPolicy::kPriorityClasses, 4});
  std::mutex mu;
  std::vector<int> order;
  std::vector<std::unique_ptr<Rule>> rules;
  auto add = [&](int priority) {
    rules.push_back(std::make_unique<Rule>(
        "r" + std::to_string(priority) + "_" +
            std::to_string(static_cast<int>(rules.size())),
        "e", nullptr, [&mu, &order, priority](const RuleContext&) {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(priority);
        }));
    Firing f;
    f.rule = rules.back().get();
    f.priority_path = {priority};
    f.txn = 1;
    scheduler.Enqueue(f);
  };
  add(1);
  add(9);
  add(9);
  add(1);
  scheduler.Drain();
  ASSERT_EQ(order.size(), 4u);
  // Both 9s strictly precede both 1s (within class, order is concurrent).
  EXPECT_EQ(order[0], 9);
  EXPECT_EQ(order[1], 9);
  EXPECT_EQ(order[2], 1);
  EXPECT_EQ(order[3], 1);
}

TEST_F(SchedulerTest, SubtransactionsCleanedUpAfterDrain) {
  auto rule = std::make_unique<Rule>("r", "e", nullptr,
                                     [](const RuleContext&) {});
  for (int i = 0; i < 10; ++i) {
    scheduler_.Enqueue(MakeFiring(rule.get(), 1, /*txn=*/7));
  }
  scheduler_.Drain();
  EXPECT_EQ(nested_.active_count(), 0u);
  EXPECT_EQ(scheduler_.executed_count(), 10u);
}

}  // namespace
}  // namespace sentinel::rules
