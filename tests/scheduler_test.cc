#include "rules/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "rules/thread_pool.h"

namespace sentinel::rules {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { ++done; });
  }
  pool.WaitIdle();
  EXPECT_EQ(done, 100);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      int now = ++concurrent;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      --concurrent;
    });
  }
  pool.WaitIdle();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
}

TEST(ThreadPoolTest, ZeroWorkersClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.WaitIdle();
  EXPECT_TRUE(ran);
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : scheduler_(&nested_, nullptr,
                   RuleScheduler::Options{SchedulingPolicy::kSerial, 2}) {}

  void TearDown() override { FailPointRegistry::Instance().DisableAll(); }

  Firing MakeFiring(Rule* rule, int priority, storage::TxnId txn = 1) {
    Firing f;
    f.rule = rule;
    f.txn = txn;
    f.priority_path = {priority};
    return f;
  }

  txn::NestedTransactionManager nested_;
  RuleScheduler scheduler_;
};

TEST_F(SchedulerTest, DrainOnEmptyQueueReturns) {
  scheduler_.Drain();
  EXPECT_EQ(scheduler_.executed_count(), 0u);
}

TEST_F(SchedulerTest, SerialPolicyOrdersByPriority) {
  std::vector<int> order;
  std::mutex mu;
  std::vector<std::unique_ptr<Rule>> rules;
  for (int p : {2, 7, 5, 7, 1}) {
    rules.push_back(std::make_unique<Rule>(
        "r" + std::to_string(static_cast<int>(rules.size())), "e", nullptr,
        [&order, &mu, p](const RuleContext&) {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(p);
        }));
    rules.back()->set_priority(p);
    scheduler_.Enqueue(MakeFiring(rules.back().get(), p));
  }
  scheduler_.Drain();
  EXPECT_EQ(order, (std::vector<int>{7, 7, 5, 2, 1}));
  EXPECT_EQ(scheduler_.executed_count(), 5u);
}

TEST_F(SchedulerTest, DeeperPathPreemptsSiblingOfEqualPriority) {
  // Path {5,3} (a nested rule under priority-5) must run before {5}'s
  // sibling {4} and before {5} itself if both pending.
  std::vector<std::string> order;
  std::mutex mu;
  auto mk = [&](const std::string& name) {
    auto rule = std::make_unique<Rule>(name, "e", nullptr,
                                       [&order, &mu, name](const RuleContext&) {
                                         std::lock_guard<std::mutex> lock(mu);
                                         order.push_back(name);
                                       });
    return rule;
  };
  auto nested = mk("nested"), sibling = mk("sibling");
  Firing deep;
  deep.rule = nested.get();
  deep.priority_path = {5, 3};
  deep.depth = 2;
  Firing shallow;
  shallow.rule = sibling.get();
  shallow.priority_path = {4};
  scheduler_.Enqueue(shallow);
  scheduler_.Enqueue(deep);
  scheduler_.Drain();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "nested");
  EXPECT_EQ(order[1], "sibling");
}

TEST_F(SchedulerTest, DisabledRuleSkipped) {
  auto rule = std::make_unique<Rule>("r", "e", nullptr,
                                     [](const RuleContext&) { FAIL(); });
  rule->set_enabled(false);
  scheduler_.Enqueue(MakeFiring(rule.get(), 1));
  scheduler_.Drain();
  EXPECT_EQ(scheduler_.executed_count(), 0u);
}

TEST_F(SchedulerTest, ObserverSeesExecutions) {
  std::atomic<int> observed{0};
  std::atomic<int> held{0};
  scheduler_.SetExecutionObserver(
      [&](const Firing&, bool condition_held, Status) {
        ++observed;
        if (condition_held) ++held;
      });
  auto yes = std::make_unique<Rule>("yes", "e", nullptr,
                                    [](const RuleContext&) {});
  auto no = std::make_unique<Rule>(
      "no", "e", [](const RuleContext&) { return false; },
      [](const RuleContext&) {});
  scheduler_.Enqueue(MakeFiring(yes.get(), 1));
  scheduler_.Enqueue(MakeFiring(no.get(), 1));
  scheduler_.Drain();
  EXPECT_EQ(observed, 2);
  EXPECT_EQ(held, 1);
  EXPECT_EQ(scheduler_.condition_rejections(), 1u);
}

TEST_F(SchedulerTest, PriorityClassesRunEqualPathsTogether) {
  RuleScheduler scheduler(
      &nested_, nullptr,
      RuleScheduler::Options{SchedulingPolicy::kPriorityClasses, 4});
  std::mutex mu;
  std::vector<int> order;
  std::vector<std::unique_ptr<Rule>> rules;
  auto add = [&](int priority) {
    rules.push_back(std::make_unique<Rule>(
        "r" + std::to_string(priority) + "_" +
            std::to_string(static_cast<int>(rules.size())),
        "e", nullptr, [&mu, &order, priority](const RuleContext&) {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(priority);
        }));
    Firing f;
    f.rule = rules.back().get();
    f.priority_path = {priority};
    f.txn = 1;
    scheduler.Enqueue(f);
  };
  add(1);
  add(9);
  add(9);
  add(1);
  scheduler.Drain();
  ASSERT_EQ(order.size(), 4u);
  // Both 9s strictly precede both 1s (within class, order is concurrent).
  EXPECT_EQ(order[0], 9);
  EXPECT_EQ(order[1], 9);
  EXPECT_EQ(order[2], 1);
  EXPECT_EQ(order[3], 1);
}

TEST_F(SchedulerTest, SubtransactionsCleanedUpAfterDrain) {
  auto rule = std::make_unique<Rule>("r", "e", nullptr,
                                     [](const RuleContext&) {});
  for (int i = 0; i < 10; ++i) {
    scheduler_.Enqueue(MakeFiring(rule.get(), 1, /*txn=*/7));
  }
  scheduler_.Drain();
  EXPECT_EQ(nested_.active_count(), 0u);
  EXPECT_EQ(scheduler_.executed_count(), 10u);
}

TEST_F(SchedulerTest, ThrowingActionIsContained) {
  // A rule whose action throws must not take the process down: its
  // subtransaction is aborted, the failure is counted and reported to the
  // observer, and later rules still run.
  std::vector<Status> statuses;
  std::mutex mu;
  scheduler_.SetExecutionObserver([&](const Firing&, bool, Status st) {
    std::lock_guard<std::mutex> lock(mu);
    statuses.push_back(std::move(st));
  });
  auto bomb = std::make_unique<Rule>("bomb", "e", nullptr,
                                     [](const RuleContext&) {
                                       throw std::runtime_error("boom");
                                     });
  std::atomic<bool> survivor_ran{false};
  auto survivor = std::make_unique<Rule>(
      "survivor", "e", nullptr,
      [&survivor_ran](const RuleContext&) { survivor_ran = true; });
  scheduler_.Enqueue(MakeFiring(bomb.get(), 9));
  scheduler_.Enqueue(MakeFiring(survivor.get(), 1));
  scheduler_.Drain();
  EXPECT_TRUE(survivor_ran);
  EXPECT_EQ(scheduler_.failed_count(), 1u);
  EXPECT_EQ(scheduler_.executed_count(), 1u);
  EXPECT_EQ(nested_.active_count(), 0u);  // failed subtxn was aborted
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_FALSE(statuses[0].ok());  // bomb ran first (priority 9)
  EXPECT_NE(statuses[0].ToString().find("boom"), std::string::npos);
  EXPECT_TRUE(statuses[1].ok());
}

TEST_F(SchedulerTest, ThrowingConditionIsContained) {
  auto rule = std::make_unique<Rule>(
      "r", "e",
      [](const RuleContext&) -> bool { throw std::runtime_error("cond"); },
      [](const RuleContext&) { FAIL() << "action must not run"; });
  scheduler_.Enqueue(MakeFiring(rule.get(), 1));
  scheduler_.Drain();
  EXPECT_EQ(scheduler_.failed_count(), 1u);
  EXPECT_EQ(scheduler_.executed_count(), 0u);
  EXPECT_EQ(nested_.active_count(), 0u);
  EXPECT_EQ(rule->fired_count(), 0u);
}

TEST_F(SchedulerTest, FailpointInjectedRuleFailure) {
  ASSERT_TRUE(FailPointRegistry::Instance()
                  .Enable("scheduler.execute", "error(hit=1)")
                  .ok());
  std::atomic<bool> second_ran{false};
  auto first = std::make_unique<Rule>("first", "e", nullptr,
                                      [](const RuleContext&) {});
  auto second = std::make_unique<Rule>(
      "second", "e", nullptr,
      [&second_ran](const RuleContext&) { second_ran = true; });
  scheduler_.Enqueue(MakeFiring(first.get(), 9));
  scheduler_.Enqueue(MakeFiring(second.get(), 1));
  scheduler_.Drain();
  EXPECT_TRUE(second_ran);
  EXPECT_EQ(scheduler_.failed_count(), 1u);
  EXPECT_EQ(scheduler_.executed_count(), 1u);
  EXPECT_EQ(first->fired_count(), 0u);  // injected failure before the action
  EXPECT_EQ(nested_.active_count(), 0u);
}

TEST_F(SchedulerTest, AbortTopContingencyDropsPendingFirings) {
  RuleScheduler scheduler(
      &nested_, nullptr,
      RuleScheduler::Options{SchedulingPolicy::kSerial, 2,
                             ContingencyPolicy::kAbortTop});
  auto bomb = std::make_unique<Rule>("bomb", "e", nullptr,
                                     [](const RuleContext&) {
                                       throw std::runtime_error("boom");
                                     });
  std::atomic<int> same_txn_ran{0};
  auto same_txn = std::make_unique<Rule>(
      "same", "e", nullptr,
      [&same_txn_ran](const RuleContext&) { ++same_txn_ran; });
  std::atomic<int> other_txn_ran{0};
  auto other_txn = std::make_unique<Rule>(
      "other", "e", nullptr,
      [&other_txn_ran](const RuleContext&) { ++other_txn_ran; });
  scheduler.Enqueue(MakeFiring(bomb.get(), 9, /*txn=*/7));
  scheduler.Enqueue(MakeFiring(same_txn.get(), 5, /*txn=*/7));
  scheduler.Enqueue(MakeFiring(same_txn.get(), 4, /*txn=*/7));
  scheduler.Enqueue(MakeFiring(other_txn.get(), 1, /*txn=*/8));
  scheduler.Drain();
  // The doomed transaction's queued rules were dropped; the unrelated
  // transaction's rule still ran.
  EXPECT_EQ(same_txn_ran, 0);
  EXPECT_EQ(other_txn_ran, 1);
  EXPECT_EQ(scheduler.failed_count(), 1u);
  EXPECT_EQ(scheduler.abort_top_count(), 1u);
  EXPECT_EQ(nested_.active_count(), 0u);
}

}  // namespace
}  // namespace sentinel::rules
