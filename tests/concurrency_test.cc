// Concurrency: multiple application threads signalling events and running
// transactions against one ActiveDatabase. Exercises the detector's latch,
// the scheduler's queues and the nested lock table under real contention.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/active_database.h"

namespace sentinel::core {
namespace {

using detector::EventModifier;
using rules::RuleContext;

TEST(ConcurrencyTest, ParallelNotifiersAllTriggerRules) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  ASSERT_TRUE(
      db.DeclareEvent("e", "C", EventModifier::kEnd, "void f(int v)").ok());
  std::atomic<std::uint64_t> fired{0};
  ASSERT_TRUE(db.rule_manager()
                  ->DefineRule("r", "e", nullptr,
                               [&](const RuleContext&) { ++fired; })
                  .ok());
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      auto txn = db.Begin();
      ASSERT_TRUE(txn.ok());
      for (int i = 0; i < kEventsPerThread; ++i) {
        auto params = std::make_shared<detector::ParamList>();
        params->Insert("v", oodb::Value::Int(t * 1000 + i));
        db.NotifyMethod("C", static_cast<oodb::Oid>(t + 1),
                        EventModifier::kEnd, "void f(int v)", params, *txn);
      }
      ASSERT_TRUE(db.Commit(*txn).ok());
    });
  }
  for (auto& t : threads) t.join();
  db.scheduler()->Drain();
  EXPECT_EQ(fired.load(), static_cast<std::uint64_t>(kThreads) *
                              kEventsPerThread);
  ASSERT_TRUE(db.Close().ok());
}

TEST(ConcurrencyTest, CompositeDetectionUnderParallelStreams) {
  // Each thread drives its own instance-level SEQ; detections must match
  // per-thread counts exactly (no cross-thread pairing, thanks to
  // instance-level primitive events).
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  constexpr int kThreads = 3;
  std::atomic<int> detections[kThreads];
  for (int t = 0; t < kThreads; ++t) {
    detections[t] = 0;
    auto a = db.detector()->DefinePrimitive(
        "a" + std::to_string(t), "C", EventModifier::kEnd, "void fa()",
        static_cast<oodb::Oid>(t + 1));
    auto b = db.detector()->DefinePrimitive(
        "b" + std::to_string(t), "C", EventModifier::kEnd, "void fb()",
        static_cast<oodb::Oid>(t + 1));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(
        db.detector()->DefineSeq("s" + std::to_string(t), *a, *b).ok());
    ASSERT_TRUE(db.rule_manager()
                    ->DefineRule("r" + std::to_string(t),
                                 "s" + std::to_string(t), nullptr,
                                 [&detections, t](const RuleContext&) {
                                   ++detections[t];
                                 })
                    .ok());
  }
  constexpr int kPairs = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      auto params = std::make_shared<detector::ParamList>();
      for (int i = 0; i < kPairs; ++i) {
        db.NotifyMethod("C", static_cast<oodb::Oid>(t + 1),
                        EventModifier::kEnd, "void fa()", params, 1);
        db.NotifyMethod("C", static_cast<oodb::Oid>(t + 1),
                        EventModifier::kEnd, "void fb()", params, 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  db.scheduler()->Drain();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(detections[t].load(), kPairs) << "thread " << t;
  }
  ASSERT_TRUE(db.Close().ok());
}

TEST(ConcurrencyTest, ParallelTransactionsOnPersistentStore) {
  const std::string prefix = "/tmp/sentinel_conc_" + std::to_string(::getpid());
  std::remove((prefix + ".db").c_str());
  std::remove((prefix + ".wal").c_str());
  {
    ActiveDatabase db;
    ASSERT_TRUE(db.Open(prefix).ok());
    ASSERT_TRUE(
        db.database()->classes()->Register(oodb::ClassDef("Acct", "")).ok());
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    std::atomic<int> created{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&db, &created, t] {
        for (int i = 0; i < 25; ++i) {
          auto txn = db.Begin();
          if (!txn.ok()) continue;
          auto oid = db.CreateObject(
              *txn, "Acct", "acct-" + std::to_string(t) + "-" +
                                std::to_string(i));
          if (oid.ok() && db.Commit(*txn).ok()) {
            ++created;
          } else if (oid.ok()) {
            (void)db.Abort(*txn);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(created.load(), 100);
    EXPECT_EQ(db.database()->objects()->object_count(), 100u);
    ASSERT_TRUE(db.Close().ok());
  }
  // Reopen: everything durable.
  ActiveDatabase reopened;
  ASSERT_TRUE(reopened.Open(prefix).ok());
  EXPECT_EQ(reopened.database()->objects()->object_count(), 100u);
  ASSERT_TRUE(reopened.Close().ok());
  std::remove((prefix + ".db").c_str());
  std::remove((prefix + ".wal").c_str());
}

// Notify storm across the lock-striped dispatch path: each thread hammers
// its own class (composite SEQ event subscribed per class) while every
// notification also matches a class-level event on the shared base class.
// Exercises the shared graph lock, the dispatch index under concurrent
// probes, striped operator buffers, and inheritance routing, with exact
// final counts.
TEST(ConcurrencyTest, NotifyStormStripedDispatch) {
  class AtomicSink : public detector::EventSink {
   public:
    void OnEvent(const detector::Occurrence&,
                 detector::ParamContext) override {
      count.fetch_add(1, std::memory_order_relaxed);
    }
    std::atomic<std::uint64_t> count{0};
  };

  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  constexpr int kThreads = 4;
  constexpr int kPairsPerThread = 400;

  // In-memory mode has no persistent store; supply the class hierarchy
  // directly so inheritance-aware routing is exercised.
  oodb::ClassRegistry classes;
  db.detector()->set_class_registry(&classes);
  ASSERT_TRUE(classes.Register(oodb::ClassDef("Base", "")).ok());
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(
        classes.Register(oodb::ClassDef("S" + std::to_string(t), "Base"))
            .ok());
  }

  // Class-level event on the base class: fires for every subclass `fa` call.
  auto base_event = db.detector()->DefinePrimitive(
      "base_fa", "Base", EventModifier::kEnd, "void fa()");
  ASSERT_TRUE(base_event.ok());
  AtomicSink base_sink;
  ASSERT_TRUE(db.detector()
                  ->Subscribe("base_fa", &base_sink,
                              detector::ParamContext::kRecent)
                  .ok());

  // Per-class composite SEQ(a_t ; b_t), each with its own sink.
  std::vector<std::unique_ptr<AtomicSink>> seq_sinks;
  for (int t = 0; t < kThreads; ++t) {
    const std::string cls = "S" + std::to_string(t);
    auto a = db.detector()->DefinePrimitive("a" + std::to_string(t), cls,
                                            EventModifier::kEnd, "void fa()");
    auto b = db.detector()->DefinePrimitive("b" + std::to_string(t), cls,
                                            EventModifier::kEnd, "void fb()");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(
        db.detector()->DefineSeq("seq" + std::to_string(t), *a, *b).ok());
    seq_sinks.push_back(std::make_unique<AtomicSink>());
    ASSERT_TRUE(db.detector()
                    ->Subscribe("seq" + std::to_string(t),
                                seq_sinks.back().get(),
                                detector::ParamContext::kRecent)
                    .ok());
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      const std::string cls = "S" + std::to_string(t);
      auto params = std::make_shared<detector::ParamList>();
      for (int i = 0; i < kPairsPerThread; ++i) {
        db.NotifyMethod(cls, static_cast<oodb::Oid>(t + 1),
                        EventModifier::kEnd, "void fa()", params, 1);
        db.NotifyMethod(cls, static_cast<oodb::Oid>(t + 1),
                        EventModifier::kEnd, "void fb()", params, 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  db.scheduler()->Drain();

  // Every fa on every subclass matched the base-class event.
  EXPECT_EQ(base_sink.count.load(),
            static_cast<std::uint64_t>(kThreads) * kPairsPerThread);
  // Each per-class SEQ paired its own thread's fa;fb stream exactly.
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(seq_sinks[t]->count.load(),
              static_cast<std::uint64_t>(kPairsPerThread))
        << "class S" << t;
  }
  ASSERT_TRUE(db.Close().ok());
}

}  // namespace
}  // namespace sentinel::core
