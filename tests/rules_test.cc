#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "detector/local_detector.h"
#include "detector_test_util.h"
#include "rules/rule_manager.h"
#include "rules/scheduler.h"
#include "txn/nested_txn.h"

namespace sentinel::rules {
namespace {

using detector::EventModifier;
using detector::LocalEventDetector;
using detector::ParamContext;

/// Detector + scheduler + manager without persistence.
class RulesTest : public ::testing::Test {
 protected:
  RulesTest()
      : scheduler_(&nested_, nullptr, RuleScheduler::Options{}),
        manager_(&det_, &scheduler_) {
    e1_ = *det_.DefinePrimitive("e1", "C", EventModifier::kEnd, "void f()");
    e2_ = *det_.DefinePrimitive("e2", "C", EventModifier::kEnd, "void g()");
  }

  void FireF(int v = 0, detector::TxnId txn = 1) {
    detector::Fire(&det_, "C", "void f()", v, txn);
    scheduler_.Drain();
  }
  void FireG(int v = 0, detector::TxnId txn = 1) {
    detector::Fire(&det_, "C", "void g()", v, txn);
    scheduler_.Drain();
  }

  LocalEventDetector det_;
  txn::NestedTransactionManager nested_;
  RuleScheduler scheduler_;
  RuleManager manager_;
  detector::EventNode* e1_ = nullptr;
  detector::EventNode* e2_ = nullptr;
};

TEST_F(RulesTest, RuleFiresWhenConditionHolds) {
  std::atomic<int> actions{0};
  auto rule = manager_.DefineRule(
      "r1", "e1",
      [](const RuleContext& ctx) { return ctx.Param("v")->AsInt() > 10; },
      [&](const RuleContext&) { ++actions; });
  ASSERT_TRUE(rule.ok());
  FireF(5);
  EXPECT_EQ(actions, 0);
  EXPECT_EQ(scheduler_.condition_rejections(), 1u);
  FireF(15);
  EXPECT_EQ(actions, 1);
  EXPECT_EQ((*rule)->fired_count(), 1u);
}

TEST_F(RulesTest, NullConditionAlwaysFires) {
  std::atomic<int> actions{0};
  ASSERT_TRUE(manager_
                  .DefineRule("r1", "e1", nullptr,
                              [&](const RuleContext&) { ++actions; })
                  .ok());
  FireF();
  FireF();
  EXPECT_EQ(actions, 2);
}

TEST_F(RulesTest, MultipleRulesOnOneEvent) {
  std::atomic<int> a{0}, b{0};
  ASSERT_TRUE(manager_.DefineRule("ra", "e1", nullptr,
                                  [&](const RuleContext&) { ++a; })
                  .ok());
  ASSERT_TRUE(manager_.DefineRule("rb", "e1", nullptr,
                                  [&](const RuleContext&) { ++b; })
                  .ok());
  FireF();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST_F(RulesTest, DisableEnableDelete) {
  std::atomic<int> actions{0};
  ASSERT_TRUE(manager_.DefineRule("r1", "e1", nullptr,
                                  [&](const RuleContext&) { ++actions; })
                  .ok());
  FireF();
  EXPECT_EQ(actions, 1);
  ASSERT_TRUE(manager_.DisableRule("r1").ok());
  FireF();
  EXPECT_EQ(actions, 1);
  ASSERT_TRUE(manager_.EnableRule("r1").ok());
  FireF();
  EXPECT_EQ(actions, 2);
  ASSERT_TRUE(manager_.DeleteRule("r1").ok());
  FireF();
  EXPECT_EQ(actions, 2);
  EXPECT_TRUE(manager_.Find("r1").status().IsNotFound());
}

TEST_F(RulesTest, DeleteDeferredRuleRemovesRewrittenNode) {
  // The DEFERRED rewrite generates a per-rule A*(begin, E, pre_commit) node;
  // deleting the rule must remove it again, including anything it buffered —
  // otherwise every define/delete cycle leaks a node that accumulates
  // occurrences for the rest of the process lifetime.
  ASSERT_TRUE(det_.DefineExplicit("sys_begin_transaction").ok());
  ASSERT_TRUE(det_.DefineExplicit("sys_pre_commit_transaction").ok());
  const std::size_t baseline_nodes = det_.node_count();
  const std::size_t baseline_buffered = det_.BufferedCount();

  RuleManager::RuleOptions options;
  options.coupling = CouplingMode::kDeferred;
  std::atomic<int> actions{0};
  ASSERT_TRUE(manager_
                  .DefineRule("rd", "e1", nullptr,
                              [&](const RuleContext&) { ++actions; }, options)
                  .ok());
  EXPECT_EQ(det_.node_count(), baseline_nodes + 1);

  // Open the A* window and accumulate an occurrence in it.
  auto params = std::make_shared<detector::ParamList>();
  ASSERT_TRUE(det_.RaiseExplicit("sys_begin_transaction", params, 1).ok());
  FireF(1, 1);
  EXPECT_GT(det_.BufferedCount(), baseline_buffered);

  ASSERT_TRUE(manager_.DeleteRule("rd").ok());
  EXPECT_EQ(det_.node_count(), baseline_nodes);
  EXPECT_EQ(det_.BufferedCount(), baseline_buffered);

  // The event graph stays fully usable: a fresh deferred rule gets its own
  // node and still executes at pre_commit.
  ASSERT_TRUE(manager_
                  .DefineRule("rd2", "e1", nullptr,
                              [&](const RuleContext&) { ++actions; }, options)
                  .ok());
  ASSERT_TRUE(det_.RaiseExplicit("sys_begin_transaction", params, 2).ok());
  FireF(1, 2);
  ASSERT_TRUE(det_.RaiseExplicit("sys_pre_commit_transaction", params, 2).ok());
  scheduler_.Drain();
  EXPECT_EQ(actions, 1);
}

TEST_F(RulesTest, RuleOnUndefinedEventFails) {
  EXPECT_TRUE(manager_.DefineRule("r", "nope", nullptr, nullptr)
                  .status()
                  .IsNotFound());
}

TEST_F(RulesTest, DuplicateRuleNameRejected) {
  ASSERT_TRUE(manager_.DefineRule("r", "e1", nullptr, nullptr).ok());
  EXPECT_TRUE(
      manager_.DefineRule("r", "e1", nullptr, nullptr).status().IsAlreadyExists());
}

TEST_F(RulesTest, ContextMismatchDoesNotTrigger) {
  // Rule in CHRONICLE must not fire from RECENT detections of another rule.
  std::atomic<int> recent_count{0}, chron_count{0};
  auto and_node = det_.DefineAnd("both", e1_, e2_);
  ASSERT_TRUE(and_node.ok());
  RuleManager::RuleOptions recent_options;
  recent_options.context = ParamContext::kRecent;
  RuleManager::RuleOptions chron_options;
  chron_options.context = ParamContext::kChronicle;
  ASSERT_TRUE(manager_
                  .DefineRule("r_recent", "both", nullptr,
                              [&](const RuleContext&) { ++recent_count; },
                              recent_options)
                  .ok());
  ASSERT_TRUE(manager_
                  .DefineRule("r_chron", "both", nullptr,
                              [&](const RuleContext&) { ++chron_count; },
                              chron_options)
                  .ok());
  FireF();
  FireG();
  FireG();  // RECENT re-pairs, CHRONICLE does not
  EXPECT_EQ(recent_count, 2);
  EXPECT_EQ(chron_count, 1);
}

TEST_F(RulesTest, TriggerModeNowIgnoresPastOccurrences) {
  // Buffer an initiator before the rule exists, using another rule to keep
  // the AND node active.
  auto and_node = det_.DefineAnd("both", e1_, e2_);
  ASSERT_TRUE(and_node.ok());
  ASSERT_TRUE(manager_.DefineRule("keeper", "both", nullptr, nullptr).ok());
  FireF(1);  // buffered initiator, before r_now exists

  std::atomic<int> now_count{0}, prev_count{0};
  RuleManager::RuleOptions now_options;  // NOW is the default
  ASSERT_TRUE(manager_
                  .DefineRule("r_now", "both", nullptr,
                              [&](const RuleContext&) { ++now_count; },
                              now_options)
                  .ok());
  RuleManager::RuleOptions prev_options;
  prev_options.trigger_mode = TriggerMode::kPrevious;
  ASSERT_TRUE(manager_
                  .DefineRule("r_prev", "both", nullptr,
                              [&](const RuleContext&) { ++prev_count; },
                              prev_options)
                  .ok());
  FireG(2);  // completes the AND; its interval starts before r_now's birth
  EXPECT_EQ(prev_count, 1);
  EXPECT_EQ(now_count, 0);  // t_start precedes rule definition
}

TEST_F(RulesTest, NestedRuleTriggeringRunsDepthFirst) {
  std::vector<std::string> order;
  std::mutex order_mu;
  auto log = [&](const std::string& s) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(s);
  };
  // r_outer (prio 5) raises e2 in its action -> r_inner fires nested.
  // r_low (prio 1) also on e1. Depth-first: r_outer, r_inner, then r_low.
  RuleManager::RuleOptions outer_options;
  outer_options.priority = 5;
  ASSERT_TRUE(manager_
                  .DefineRule("r_outer", "e1", nullptr,
                              [&](const RuleContext& ctx) {
                                log("outer");
                                detector::Fire(&det_, "C", "void g()", 0,
                                               ctx.txn);
                              },
                              outer_options)
                  .ok());
  RuleManager::RuleOptions low_options;
  low_options.priority = 1;
  ASSERT_TRUE(manager_
                  .DefineRule("r_low", "e1", nullptr,
                              [&](const RuleContext&) { log("low"); },
                              low_options)
                  .ok());
  RuleManager::RuleOptions inner_options;
  inner_options.priority = 3;
  ASSERT_TRUE(manager_
                  .DefineRule("r_inner", "e2", nullptr,
                              [&](const RuleContext&) { log("inner"); },
                              inner_options)
                  .ok());
  scheduler_.set_policy(SchedulingPolicy::kSerial);
  FireF();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "outer");
  EXPECT_EQ(order[1], "inner");  // nested before the lower-priority sibling
  EXPECT_EQ(order[2], "low");
  EXPECT_GE(scheduler_.max_depth_seen(), 2);
}

TEST_F(RulesTest, PriorityOrderSerial) {
  std::vector<int> order;
  std::mutex order_mu;
  for (int p : {1, 9, 5}) {
    RuleManager::RuleOptions options;
    options.priority = p;
    ASSERT_TRUE(manager_
                    .DefineRule("r" + std::to_string(p), "e1", nullptr,
                                [&, p](const RuleContext&) {
                                  std::lock_guard<std::mutex> lock(order_mu);
                                  order.push_back(p);
                                },
                                options)
                    .ok());
  }
  scheduler_.set_policy(SchedulingPolicy::kSerial);
  FireF();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{9, 5, 1}));
}

TEST_F(RulesTest, PriorityClassesByName) {
  ASSERT_TRUE(manager_.DefinePriorityClass("high", 10).ok());
  ASSERT_TRUE(manager_.DefinePriorityClass("low", 1).ok());
  EXPECT_EQ(*manager_.PriorityClassRank("high"), 10);
  std::vector<int> order;
  std::mutex order_mu;
  auto mk = [&](const std::string& name, const std::string& cls) {
    RuleManager::RuleOptions options;
    auto rank = manager_.PriorityClassRank(cls);
    ASSERT_TRUE(rank.ok());
    ASSERT_TRUE(manager_
                    .DefineRuleWithPriorityClass(
                        name, "e1", nullptr,
                        [&, r = *rank](const RuleContext&) {
                          std::lock_guard<std::mutex> lock(order_mu);
                          order.push_back(r);
                        },
                        options, cls)
                    .ok());
  };
  mk("r_low", "low");
  mk("r_high", "high");
  scheduler_.set_policy(SchedulingPolicy::kSerial);
  FireF();
  EXPECT_EQ(order, (std::vector<int>{10, 1}));
}

TEST_F(RulesTest, ConditionCannotRaiseEvents) {
  // A condition that invokes an event-generating call must not trigger
  // other rules (signalling suppressed, §3.2.1).
  std::atomic<int> g_rules{0};
  ASSERT_TRUE(manager_.DefineRule("on_g", "e2", nullptr,
                                  [&](const RuleContext&) { ++g_rules; })
                  .ok());
  ASSERT_TRUE(manager_
                  .DefineRule("sneaky", "e1",
                              [&](const RuleContext&) {
                                detector::Fire(&det_, "C", "void g()", 0, 1);
                                return true;
                              },
                              nullptr)
                  .ok());
  FireF();
  EXPECT_EQ(g_rules, 0);
  // Raised from an action it does work.
  ASSERT_TRUE(manager_.DeleteRule("sneaky").ok());
  ASSERT_TRUE(manager_
                  .DefineRule("loud", "e1", nullptr,
                              [&](const RuleContext&) {
                                detector::Fire(&det_, "C", "void g()", 0, 1);
                              })
                  .ok());
  FireF();
  EXPECT_EQ(g_rules, 1);
}

TEST_F(RulesTest, RulesRunAsSubtransactions) {
  std::atomic<int> depth_seen{-1};
  ASSERT_TRUE(manager_
                  .DefineRule("r1", "e1", nullptr,
                              [&](const RuleContext& ctx) {
                                if (ctx.subtxn != txn::kInvalidSubTxn) {
                                  auto d = nested_.Depth(ctx.subtxn);
                                  if (d.ok()) depth_seen = *d;
                                }
                              })
                  .ok());
  FireF(0, /*txn=*/42);
  EXPECT_EQ(depth_seen, 1);
  EXPECT_EQ(nested_.active_count(), 0u);  // committed after execution
}

TEST_F(RulesTest, DeleteWithQueuedFiringIsSafe) {
  // A firing already queued when its rule is deleted must neither execute
  // nor touch freed memory (DeleteRule disables, drains, then erases).
  std::atomic<int> actions{0};
  auto rule = manager_.DefineRule("r1", "e1", nullptr,
                                  [&](const RuleContext&) { ++actions; });
  ASSERT_TRUE(rule.ok());
  detector::Occurrence occ;
  occ.event_name = "e1";
  occ.t_start = occ.t_end = 1;
  manager_.Trigger(*rule, occ, detector::ParamContext::kRecent);  // queued
  ASSERT_TRUE(manager_.DeleteRule("r1").ok());
  scheduler_.Drain();
  EXPECT_EQ(actions, 0);
}

TEST_F(RulesTest, ConcurrentPolicyRunsAllRules) {
  scheduler_.set_policy(SchedulingPolicy::kConcurrent);
  std::atomic<int> actions{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(manager_
                    .DefineRule("r" + std::to_string(i), "e1", nullptr,
                                [&](const RuleContext&) { ++actions; })
                    .ok());
  }
  FireF();
  EXPECT_EQ(actions, 8);
}

}  // namespace
}  // namespace sentinel::rules
