#include "storage/storage_engine.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "storage/recovery.h"

namespace sentinel::storage {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string Str(const std::vector<std::uint8_t>& b) {
  return std::string(b.begin(), b.end());
}

class StorageEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = (std::filesystem::temp_directory_path() /
               ("sentinel_engine_test_" +
                std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                  .string();
    Cleanup();
    ASSERT_TRUE(engine_.Open(prefix_).ok());
  }

  void TearDown() override {
    (void)engine_.Close();
    Cleanup();
  }

  void Cleanup() {
    std::remove((prefix_ + ".db").c_str());
    std::remove((prefix_ + ".wal").c_str());
  }

  std::string prefix_;
  StorageEngine engine_;
};

TEST_F(StorageEngineTest, InsertReadCommit) {
  auto file = engine_.CreateHeapFile();
  ASSERT_TRUE(file.ok());
  auto txn = engine_.Begin();
  ASSERT_TRUE(txn.ok());
  auto rid = engine_.Insert(*txn, *file, Bytes("record-1"));
  ASSERT_TRUE(rid.ok());
  auto read = engine_.Read(*txn, *file, *rid);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(Str(*read), "record-1");
  ASSERT_TRUE(engine_.Commit(*txn).ok());
  EXPECT_FALSE(engine_.IsActive(*txn));
}

TEST_F(StorageEngineTest, AbortUndoesInsert) {
  auto file = engine_.CreateHeapFile();
  auto txn = engine_.Begin();
  auto rid = engine_.Insert(*txn, *file, Bytes("ghost"));
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(engine_.Abort(*txn).ok());

  auto txn2 = engine_.Begin();
  auto read = engine_.Read(*txn2, *file, *rid);
  EXPECT_TRUE(read.status().IsNotFound());
  ASSERT_TRUE(engine_.Commit(*txn2).ok());
}

TEST_F(StorageEngineTest, AbortUndoesUpdateAndDelete) {
  auto file = engine_.CreateHeapFile();
  auto setup = engine_.Begin();
  auto rid1 = engine_.Insert(*setup, *file, Bytes("original"));
  auto rid2 = engine_.Insert(*setup, *file, Bytes("victim"));
  ASSERT_TRUE(engine_.Commit(*setup).ok());

  auto txn = engine_.Begin();
  ASSERT_TRUE(engine_.Update(*txn, *file, *rid1, Bytes("changed")).ok());
  ASSERT_TRUE(engine_.Delete(*txn, *file, *rid2).ok());
  ASSERT_TRUE(engine_.Abort(*txn).ok());

  auto check = engine_.Begin();
  EXPECT_EQ(Str(*engine_.Read(*check, *file, *rid1)), "original");
  EXPECT_EQ(Str(*engine_.Read(*check, *file, *rid2)), "victim");
  ASSERT_TRUE(engine_.Commit(*check).ok());
}

TEST_F(StorageEngineTest, ScanSeesCommittedRecords) {
  auto file = engine_.CreateHeapFile();
  auto txn = engine_.Begin();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        engine_.Insert(*txn, *file, Bytes("r" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(engine_.Commit(*txn).ok());

  auto reader = engine_.Begin();
  int count = 0;
  ASSERT_TRUE(engine_
                  .Scan(*reader, *file,
                        [&](const Rid&, const std::vector<std::uint8_t>&) {
                          ++count;
                          return Status::OK();
                        })
                  .ok());
  EXPECT_EQ(count, 50);
  ASSERT_TRUE(engine_.Commit(*reader).ok());
}

TEST_F(StorageEngineTest, RecordsSpanMultiplePages) {
  auto file = engine_.CreateHeapFile();
  auto txn = engine_.Begin();
  std::vector<Rid> rids;
  const std::string big(1000, 'x');
  for (int i = 0; i < 20; ++i) {  // 20KB total > one 4KB page
    auto rid = engine_.Insert(*txn, *file, Bytes(big + std::to_string(i)));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  ASSERT_TRUE(engine_.Commit(*txn).ok());
  EXPECT_GT(rids.back().page_id, rids.front().page_id);

  auto check = engine_.Begin();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(Str(*engine_.Read(*check, *file, rids[i])),
              big + std::to_string(i));
  }
  ASSERT_TRUE(engine_.Commit(*check).ok());
}

TEST_F(StorageEngineTest, WriteConflictBlocksUntilRelease) {
  auto file = engine_.CreateHeapFile();
  auto setup = engine_.Begin();
  auto rid = engine_.Insert(*setup, *file, Bytes("shared"));
  ASSERT_TRUE(engine_.Commit(*setup).ok());

  auto t1 = engine_.Begin();
  ASSERT_TRUE(engine_.Update(*t1, *file, *rid, Bytes("t1")).ok());

  std::thread other([&] {
    auto t2 = engine_.Begin();
    // Blocks until t1 commits.
    ASSERT_TRUE(engine_.Update(*t2, *file, *rid, Bytes("t2")).ok());
    ASSERT_TRUE(engine_.Commit(*t2).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(engine_.Commit(*t1).ok());
  other.join();

  auto check = engine_.Begin();
  EXPECT_EQ(Str(*engine_.Read(*check, *file, *rid)), "t2");
  ASSERT_TRUE(engine_.Commit(*check).ok());
}

TEST_F(StorageEngineTest, DeadlockIsDetected) {
  auto file = engine_.CreateHeapFile();
  auto setup = engine_.Begin();
  auto rid_a = engine_.Insert(*setup, *file, Bytes("a"));
  auto rid_b = engine_.Insert(*setup, *file, Bytes("b"));
  ASSERT_TRUE(engine_.Commit(*setup).ok());

  auto t1 = engine_.Begin();
  auto t2 = engine_.Begin();
  ASSERT_TRUE(engine_.Update(*t1, *file, *rid_a, Bytes("1a")).ok());
  ASSERT_TRUE(engine_.Update(*t2, *file, *rid_b, Bytes("2b")).ok());

  Status t2_status;
  std::thread other([&] {
    t2_status = engine_.Update(*t2, *file, *rid_a, Bytes("2a"));
    if (t2_status.ok()) {
      t2_status = engine_.Commit(*t2);
    } else {
      (void)engine_.Abort(*t2);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Status t1_status = engine_.Update(*t1, *file, *rid_b, Bytes("1b"));
  if (t1_status.ok()) {
    ASSERT_TRUE(engine_.Commit(*t1).ok());
  } else {
    (void)engine_.Abort(*t1);
  }
  other.join();
  // At least one side must have been refused (deadlock or timeout).
  EXPECT_TRUE(!t1_status.ok() || !t2_status.ok());
  EXPECT_TRUE(t1_status.ok() || t1_status.IsDeadlock() ||
              t1_status.IsLockTimeout())
      << t1_status;
  EXPECT_TRUE(t2_status.ok() || t2_status.IsDeadlock() ||
              t2_status.IsLockTimeout())
      << t2_status;
}

TEST_F(StorageEngineTest, CommittedDataSurvivesRestart) {
  auto file = engine_.CreateHeapFile();
  auto txn = engine_.Begin();
  auto rid = engine_.Insert(*txn, *file, Bytes("durable"));
  ASSERT_TRUE(engine_.Commit(*txn).ok());
  ASSERT_TRUE(engine_.Close().ok());

  StorageEngine reopened;
  ASSERT_TRUE(reopened.Open(prefix_).ok());
  auto check = reopened.Begin();
  HeapFile heap(reopened.buffer_pool(), *file);
  EXPECT_EQ(Str(*reopened.Read(*check, *file, *rid)), "durable");
  ASSERT_TRUE(reopened.Commit(*check).ok());
  ASSERT_TRUE(reopened.Close().ok());
}

TEST_F(StorageEngineTest, CrashRecoveryRedoesCommittedLoses_Uncommitted) {
  auto file = engine_.CreateHeapFile();
  auto committed = engine_.Begin();
  auto rid_c = engine_.Insert(*committed, *file, Bytes("committed"));
  ASSERT_TRUE(engine_.Commit(*committed).ok());

  auto loser = engine_.Begin();
  auto rid_l = engine_.Insert(*loser, *file, Bytes("loser"));
  ASSERT_TRUE(rid_l.ok());
  // Crash: the WAL has the committed txn's records (commit forced a flush)
  // and the loser's begin+insert; dirty pages are dropped.
  ASSERT_TRUE(engine_.log_manager()->Flush().ok());
  engine_.SimulateCrash();
  StorageEngine reopened;
  ASSERT_TRUE(reopened.Open(prefix_).ok());

  auto check = reopened.Begin();
  EXPECT_EQ(Str(*reopened.Read(*check, *file, *rid_c)), "committed");
  EXPECT_TRUE(reopened.Read(*check, *file, *rid_l).status().IsNotFound());
  ASSERT_TRUE(reopened.Commit(*check).ok());
  ASSERT_TRUE(reopened.Close().ok());
}

TEST_F(StorageEngineTest, RecoveryIsIdempotent) {
  auto file = engine_.CreateHeapFile();
  auto txn = engine_.Begin();
  auto rid = engine_.Insert(*txn, *file, Bytes("v1"));
  ASSERT_TRUE(engine_.Update(*txn, *file, *rid, Bytes("v2")).ok());
  ASSERT_TRUE(engine_.Commit(*txn).ok());
  ASSERT_TRUE(engine_.log_manager()->Flush().ok());
  engine_.SimulateCrash();

  // Recover twice over the same files.
  for (int round = 0; round < 2; ++round) {
    StorageEngine reopened;
    ASSERT_TRUE(reopened.Open(prefix_).ok());
    auto check = reopened.Begin();
    EXPECT_EQ(Str(*reopened.Read(*check, *file, *rid)), "v2");
    ASSERT_TRUE(reopened.Commit(*check).ok());
    ASSERT_TRUE(reopened.Close().ok());
  }
}

}  // namespace
}  // namespace sentinel::storage
