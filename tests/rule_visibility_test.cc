// Rule visibility scopes (paper §4 future work: public/private/protected
// rules): management rights depend on the caller's principal.

#include <gtest/gtest.h>

#include "detector/local_detector.h"
#include "rules/rule_manager.h"
#include "rules/scheduler.h"
#include "txn/nested_txn.h"

namespace sentinel::rules {
namespace {

using detector::EventModifier;

class RuleVisibilityTest : public ::testing::Test {
 protected:
  RuleVisibilityTest()
      : scheduler_(&nested_, nullptr, RuleScheduler::Options{}),
        manager_(&det_, &scheduler_) {
    (void)det_.DefinePrimitive("e", "C", EventModifier::kEnd, "void f()");
  }

  Rule* Define(const std::string& name, const std::string& owner,
               RuleVisibility visibility) {
    RuleManager::RuleOptions options;
    options.owner = owner;
    options.visibility = visibility;
    auto rule = manager_.DefineRule(name, "e", nullptr,
                                    [](const RuleContext&) {}, options);
    EXPECT_TRUE(rule.ok());
    return *rule;
  }

  detector::LocalEventDetector det_;
  txn::NestedTransactionManager nested_;
  RuleScheduler scheduler_;
  RuleManager manager_;
};

TEST_F(RuleVisibilityTest, PublicRuleManageableByAnyone) {
  Define("r", "alice", RuleVisibility::kPublic);
  RuleManager::Principal bob{"bob", {}};
  EXPECT_TRUE(manager_.DisableRuleAs(bob, "r").ok());
  EXPECT_TRUE(manager_.EnableRuleAs(bob, "r").ok());
  EXPECT_TRUE(manager_.DeleteRuleAs(bob, "r").ok());
}

TEST_F(RuleVisibilityTest, PrivateRuleOwnerOnly) {
  Define("r", "alice", RuleVisibility::kPrivate);
  RuleManager::Principal bob{"bob", {}};
  RuleManager::Principal alice{"alice", {}};
  EXPECT_TRUE(manager_.DisableRuleAs(bob, "r").IsInvalidArgument());
  EXPECT_TRUE((*manager_.Find("r"))->enabled());  // untouched
  EXPECT_TRUE(manager_.DisableRuleAs(alice, "r").ok());
  EXPECT_FALSE((*manager_.Find("r"))->enabled());
  EXPECT_TRUE(manager_.DeleteRuleAs(bob, "r").IsInvalidArgument());
  EXPECT_TRUE(manager_.DeleteRuleAs(alice, "r").ok());
}

TEST_F(RuleVisibilityTest, ProtectedRuleSharedGroup) {
  Define("r", "alice", RuleVisibility::kProtected);
  manager_.JoinGroup("alice", "traders");
  RuleManager::Principal carol{"carol", {"traders"}};
  RuleManager::Principal mallory{"mallory", {"auditors"}};
  EXPECT_TRUE(manager_.DisableRuleAs(mallory, "r").IsInvalidArgument());
  EXPECT_TRUE(manager_.DisableRuleAs(carol, "r").ok());
  EXPECT_TRUE(manager_.EnableRuleAs(carol, "r").ok());
  // The owner always may.
  RuleManager::Principal alice{"alice", {}};
  EXPECT_TRUE(manager_.DeleteRuleAs(alice, "r").ok());
}

TEST_F(RuleVisibilityTest, UnownedRulesRemainUnrestricted) {
  RuleManager::RuleOptions options;  // no owner
  options.visibility = RuleVisibility::kPrivate;
  ASSERT_TRUE(manager_.DefineRule("r", "e", nullptr, nullptr, options).ok());
  RuleManager::Principal anyone{"anyone", {}};
  EXPECT_TRUE(manager_.DisableRuleAs(anyone, "r").ok());
}

TEST_F(RuleVisibilityTest, ManagementOfMissingRuleIsNotFound) {
  RuleManager::Principal who{"x", {}};
  EXPECT_TRUE(manager_.EnableRuleAs(who, "ghost").IsNotFound());
}

TEST_F(RuleVisibilityTest, VisibilityToString) {
  EXPECT_STREQ(RuleVisibilityToString(RuleVisibility::kPublic), "PUBLIC");
  EXPECT_STREQ(RuleVisibilityToString(RuleVisibility::kProtected),
               "PROTECTED");
  EXPECT_STREQ(RuleVisibilityToString(RuleVisibility::kPrivate), "PRIVATE");
}

}  // namespace
}  // namespace sentinel::rules
