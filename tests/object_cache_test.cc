#include "oodb/object_cache.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <thread>

#include "oodb/database.h"

namespace sentinel::oodb {
namespace {

class ObjectCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = (std::filesystem::temp_directory_path() /
               ("sentinel_objcache_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                  .string();
    Cleanup();
    ASSERT_TRUE(db_.Open(prefix_).ok());
    cache_ = std::make_unique<ObjectCache>(db_.engine(), db_.objects(), 8);
  }
  void TearDown() override {
    cache_.reset();
    (void)db_.Close();
    Cleanup();
  }
  void Cleanup() {
    std::remove((prefix_ + ".db").c_str());
    std::remove((prefix_ + ".wal").c_str());
  }

  Oid MakeObject(storage::TxnId txn, int v) {
    PersistentObject obj(kInvalidOid, "Part");
    obj.Set("v", Value::Int(v));
    auto oid = cache_->Put(txn, std::move(obj));
    EXPECT_TRUE(oid.ok());
    return *oid;
  }

  void Commit(storage::TxnId txn) {
    ASSERT_TRUE(db_.Commit(txn).ok());
    cache_->OnCommit(txn);
  }
  void Abort(storage::TxnId txn) {
    ASSERT_TRUE(db_.Abort(txn).ok());
    cache_->OnAbort(txn);
  }

  std::string prefix_;
  Database db_;
  std::unique_ptr<ObjectCache> cache_;
};

TEST_F(ObjectCacheTest, OwnWritesVisibleBeforeCommit) {
  auto txn = db_.Begin();
  Oid oid = MakeObject(*txn, 7);
  auto got = cache_->Get(*txn, oid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->Get("v")->AsInt(), 7);
  Commit(*txn);
}

TEST_F(ObjectCacheTest, SecondReadIsAHit) {
  auto setup = db_.Begin();
  Oid oid = MakeObject(*setup, 1);
  Commit(*setup);

  auto txn = db_.Begin();
  ASSERT_TRUE(cache_->Get(*txn, oid).ok());  // may hit (promoted at commit)
  const auto hits_before = cache_->hit_count();
  ASSERT_TRUE(cache_->Get(*txn, oid).ok());
  EXPECT_GT(cache_->hit_count(), hits_before);
  Commit(*txn);
}

TEST_F(ObjectCacheTest, AbortDropsOverlay) {
  auto setup = db_.Begin();
  Oid oid = MakeObject(*setup, 1);
  Commit(*setup);

  auto txn = db_.Begin();
  PersistentObject updated(oid, "Part");
  updated.Set("v", Value::Int(99));
  ASSERT_TRUE(cache_->Put(*txn, std::move(updated)).ok());
  EXPECT_EQ((*cache_->Get(*txn, oid))->Get("v")->AsInt(), 99);
  Abort(*txn);

  auto check = db_.Begin();
  EXPECT_EQ((*cache_->Get(*check, oid))->Get("v")->AsInt(), 1);
  Commit(*check);
}

TEST_F(ObjectCacheTest, DeleteHidesObjectWithinTxnAndAfterCommit) {
  auto setup = db_.Begin();
  Oid oid = MakeObject(*setup, 1);
  Commit(*setup);

  auto txn = db_.Begin();
  ASSERT_TRUE(cache_->Delete(*txn, oid).ok());
  EXPECT_TRUE(cache_->Get(*txn, oid).status().IsNotFound());
  Commit(*txn);

  auto check = db_.Begin();
  EXPECT_TRUE(cache_->Get(*check, oid).status().IsNotFound());
  Commit(*check);
}

TEST_F(ObjectCacheTest, CommitPromotesNewVersion) {
  auto setup = db_.Begin();
  Oid oid = MakeObject(*setup, 1);
  Commit(*setup);

  auto writer = db_.Begin();
  PersistentObject updated(oid, "Part");
  updated.Set("v", Value::Int(2));
  ASSERT_TRUE(cache_->Put(*writer, std::move(updated)).ok());
  Commit(*writer);

  auto reader = db_.Begin();
  EXPECT_EQ((*cache_->Get(*reader, oid))->Get("v")->AsInt(), 2);
  Commit(*reader);
}

TEST_F(ObjectCacheTest, CapacityEvictsLru) {
  auto txn = db_.Begin();
  std::vector<Oid> oids;
  for (int i = 0; i < 20; ++i) oids.push_back(MakeObject(*txn, i));
  Commit(*txn);

  auto reader = db_.Begin();
  for (Oid oid : oids) ASSERT_TRUE(cache_->Get(*reader, oid).ok());
  EXPECT_LE(cache_->size(), 8u);  // capacity respected
  Commit(*reader);
}

TEST_F(ObjectCacheTest, CacheHitStillBlocksBehindWriterLock) {
  auto setup = db_.Begin();
  Oid oid = MakeObject(*setup, 1);
  Commit(*setup);
  // Warm the cache.
  auto warm = db_.Begin();
  ASSERT_TRUE(cache_->Get(*warm, oid).ok());
  Commit(*warm);

  // Writer holds the X lock.
  auto writer = db_.Begin();
  PersistentObject updated(oid, "Part");
  updated.Set("v", Value::Int(2));
  ASSERT_TRUE(cache_->Put(*writer, std::move(updated)).ok());

  std::atomic<bool> read_done{false};
  std::atomic<std::int64_t> value_seen{-1};
  std::thread reader([&] {
    auto txn = db_.Begin();
    auto got = cache_->Get(*txn, oid);  // must block despite the cache hit
    if (got.ok()) value_seen = (*got)->Get("v")->AsInt();
    read_done = true;
    (void)db_.Commit(*txn);
    cache_->OnCommit(*txn);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(read_done);
  Commit(*writer);
  reader.join();
  EXPECT_TRUE(read_done);
  EXPECT_EQ(value_seen, 2);
}

}  // namespace
}  // namespace sentinel::oodb
