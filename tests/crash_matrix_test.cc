// Crash-consistency matrix: a child process runs a commit workload with a
// crash failpoint armed at one WAL/disk choke point, dies mid-operation via
// std::_Exit (stdio buffers lost, fsync'd bytes kept — a process crash), and
// the parent reopens the database and checks the fundamental invariant:
//
//   every commit the child observed as successful is visible after recovery;
//   the never-committed transaction is not.
//
// The child records each acknowledged commit in a progress file using raw
// write()+fsync(), which survives _Exit.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "storage/storage_engine.h"

namespace sentinel {
namespace {

using storage::PageId;
using storage::StorageEngine;

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

/// Appends one line to the progress file, durably (raw fd: survives _Exit).
void RecordProgress(int fd, const std::string& line) {
  const std::string out = line + "\n";
  if (::write(fd, out.data(), out.size()) !=
      static_cast<ssize_t>(out.size())) {
    std::_Exit(7);
  }
  if (::fsync(fd) != 0) std::_Exit(7);
}

constexpr int kRounds = 8;

/// Child body. Exits 42 if the armed crash failpoint fired, 0 if the
/// workload completed without the site being exercised, 7 on harness bugs.
[[noreturn]] void ChildWorkload(const std::string& prefix,
                                const std::string& progress_path,
                                const std::string& failpoint_config) {
  int fd = ::open(progress_path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) std::_Exit(7);

  StorageEngine engine;
  if (!engine.Open(prefix).ok()) std::_Exit(7);
  auto file = engine.CreateHeapFile();
  if (!file.ok()) std::_Exit(7);
  RecordProgress(fd, "file " + std::to_string(*file));

  // A committed baseline and a never-committed loser, both before the fault
  // is armed: recovery must keep the first and roll back the second no
  // matter where the crash lands.
  {
    auto txn = engine.Begin();
    if (!txn.ok() || !engine.Insert(*txn, *file, Bytes("base")).ok() ||
        !engine.Commit(*txn).ok()) {
      std::_Exit(7);
    }
    RecordProgress(fd, "commit base");
  }
  auto loser = engine.Begin();
  if (!loser.ok() || !engine.Insert(*loser, *file, Bytes("loser")).ok()) {
    std::_Exit(7);
  }

  if (!FailPointRegistry::Instance().Configure(failpoint_config).ok()) {
    std::_Exit(7);
  }

  // Commit rounds; a crash can land inside any Insert/Commit/Checkpoint.
  // Only commits that RETURNED OK are recorded — the invariant under test.
  for (int i = 0; i < kRounds; ++i) {
    const std::string name = "round-" + std::to_string(i);
    auto txn = engine.Begin();
    if (!txn.ok()) break;
    if (!engine.Insert(*txn, *file, Bytes(name)).ok()) {
      (void)engine.Abort(*txn);
      continue;
    }
    if (engine.Commit(*txn).ok()) {
      RecordProgress(fd, "commit " + name);
    }
    // Push dirty pages through disk.write/disk.sync sites as well.
    (void)engine.Checkpoint();
  }
  std::_Exit(0);  // site never fired (or only injected errors): fine too
}

/// Non-parameterized variant of the crash-matrix fixture, for one-off
/// group-commit scenarios (wedge containment, async durability).
class CrashMatrixFixtureBase : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("sentinel_crash_matrix_f_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FailPointRegistry::Instance().DisableAll();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

class CrashMatrixTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    std::string name = GetParam();
    for (char& c : name) {
      if (c == '.' || c == '=' || c == '(' || c == ')') c = '_';
    }
    dir_ = (std::filesystem::temp_directory_path() /
            ("sentinel_crash_matrix_" + std::to_string(::getpid()) + "_" +
             name))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FailPointRegistry::Instance().DisableAll();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_P(CrashMatrixTest, CommittedSurvivesUncommittedRollsBack) {
  const std::string prefix = dir_ + "/db";
  const std::string progress_path = dir_ + "/progress";

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) ChildWorkload(prefix, progress_path, GetParam());

  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
  ASSERT_TRUE(WIFEXITED(wait_status)) << "child killed by signal "
                                      << WTERMSIG(wait_status);
  const int code = WEXITSTATUS(wait_status);
  ASSERT_TRUE(code == kFailPointCrashExitCode || code == 0)
      << "unexpected child exit code " << code;

  // Parse the durably-recorded progress.
  std::set<std::string> acknowledged;
  PageId file = storage::kInvalidPageId;
  std::ifstream progress(progress_path);
  std::string line;
  while (std::getline(progress, line)) {
    std::istringstream in(line);
    std::string verb, arg;
    in >> verb >> arg;
    if (verb == "file") {
      file = static_cast<PageId>(std::stoul(arg));
    } else if (verb == "commit") {
      acknowledged.insert(arg == "base" ? "base" : arg);
    }
  }
  ASSERT_NE(file, storage::kInvalidPageId);
  ASSERT_TRUE(acknowledged.count("base"));

  // Reopen (runs recovery) and collect what survived.
  StorageEngine engine;
  ASSERT_TRUE(engine.Open(prefix).ok());
  auto txn = engine.Begin();
  ASSERT_TRUE(txn.ok());
  std::set<std::string> visible;
  ASSERT_TRUE(engine
                  .Scan(*txn, file,
                        [&](const storage::Rid&,
                            const std::vector<std::uint8_t>& rec) {
                          visible.insert(std::string(rec.begin(), rec.end()));
                          return Status::OK();
                        })
                  .ok());
  ASSERT_TRUE(engine.Commit(*txn).ok());
  ASSERT_TRUE(engine.Close().ok());

  // Invariants: acknowledged ⊆ visible; the loser never reappears.
  acknowledged.erase("base");
  EXPECT_TRUE(visible.count("base"));
  EXPECT_FALSE(visible.count("loser"))
      << "uncommitted transaction resurrected after crash";
  for (const std::string& name : acknowledged) {
    EXPECT_TRUE(visible.count(name))
        << "acknowledged commit '" << name << "' lost after crash at "
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sites, CrashMatrixTest,
    ::testing::Values("wal.append=crash(hit=1)",      //
                      "wal.append=crash(hit=3)",      //
                      "wal.append.after=crash(hit=1)",//
                      "wal.flush=crash(hit=1)",       //
                      "wal.flush=crash(hit=3)",       //
                      "disk.write=crash(hit=1)",      //
                      "disk.sync=crash(hit=1)",       //
                      "disk.sync.after=crash(hit=1)", //
                      "disk.extend=crash(hit=1)",     //
                      "disk.header=crash(hit=1)"));

// ---------------------------------------------------------------------------
// Group commit under crashes: N threads commit concurrently while a
// `wal.flush` crash failpoint kills the process mid-barrier (on the
// group-commit thread). The invariant is the same: a commit acknowledged to
// any thread was covered by a completed fsync barrier, so it must be
// visible after recovery; the never-committed loser must not.
// ---------------------------------------------------------------------------

constexpr int kGroupThreads = 4;
constexpr int kGroupRounds = 6;

[[noreturn]] void GroupCommitChildWorkload(const std::string& prefix,
                                           const std::string& progress_path,
                                           const std::string& failpoint_config) {
  int fd = ::open(progress_path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) std::_Exit(7);

  StorageEngine engine;
  if (!engine.Open(prefix).ok()) std::_Exit(7);
  auto file = engine.CreateHeapFile();
  if (!file.ok()) std::_Exit(7);
  RecordProgress(fd, "file " + std::to_string(*file));

  {
    auto txn = engine.Begin();
    if (!txn.ok() || !engine.Insert(*txn, *file, Bytes("base")).ok() ||
        !engine.Commit(*txn).ok()) {
      std::_Exit(7);
    }
    RecordProgress(fd, "commit base");
  }
  auto loser = engine.Begin();
  if (!loser.ok() || !engine.Insert(*loser, *file, Bytes("loser")).ok()) {
    std::_Exit(7);
  }

  if (!FailPointRegistry::Instance().Configure(failpoint_config).ok()) {
    std::_Exit(7);
  }

  std::mutex progress_mu;
  std::vector<std::thread> threads;
  threads.reserve(kGroupThreads);
  for (int t = 0; t < kGroupThreads; ++t) {
    threads.emplace_back([&engine, &file, &progress_mu, fd, t] {
      for (int i = 0; i < kGroupRounds; ++i) {
        const std::string name =
            "t" + std::to_string(t) + "-r" + std::to_string(i);
        auto txn = engine.Begin();
        if (!txn.ok()) return;  // log wedged or crashed under us
        if (!engine.Insert(*txn, *file, Bytes(name)).ok()) {
          (void)engine.Abort(*txn);
          continue;
        }
        if (engine.Commit(*txn).ok()) {
          std::lock_guard<std::mutex> lock(progress_mu);
          RecordProgress(fd, "commit " + name);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::_Exit(0);
}

class GroupCommitCrashMatrixTest : public CrashMatrixTest {};

TEST_P(GroupCommitCrashMatrixTest, AcknowledgedGroupCommitsSurviveCrash) {
  const std::string prefix = dir_ + "/db";
  const std::string progress_path = dir_ + "/progress";

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) GroupCommitChildWorkload(prefix, progress_path, GetParam());

  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
  ASSERT_TRUE(WIFEXITED(wait_status))
      << "child killed by signal " << WTERMSIG(wait_status);
  const int code = WEXITSTATUS(wait_status);
  ASSERT_TRUE(code == kFailPointCrashExitCode || code == 0)
      << "unexpected child exit code " << code;

  std::set<std::string> acknowledged;
  PageId file = storage::kInvalidPageId;
  std::ifstream progress(progress_path);
  std::string line;
  while (std::getline(progress, line)) {
    std::istringstream in(line);
    std::string verb, arg;
    in >> verb >> arg;
    if (verb == "file") {
      file = static_cast<PageId>(std::stoul(arg));
    } else if (verb == "commit") {
      acknowledged.insert(arg);
    }
  }
  ASSERT_NE(file, storage::kInvalidPageId);
  ASSERT_TRUE(acknowledged.count("base"));

  StorageEngine engine;
  ASSERT_TRUE(engine.Open(prefix).ok());
  auto txn = engine.Begin();
  ASSERT_TRUE(txn.ok());
  std::set<std::string> visible;
  ASSERT_TRUE(engine
                  .Scan(*txn, file,
                        [&](const storage::Rid&,
                            const std::vector<std::uint8_t>& rec) {
                          visible.insert(std::string(rec.begin(), rec.end()));
                          return Status::OK();
                        })
                  .ok());
  ASSERT_TRUE(engine.Commit(*txn).ok());
  ASSERT_TRUE(engine.Close().ok());

  EXPECT_FALSE(visible.count("loser"))
      << "uncommitted transaction resurrected after crash";
  for (const std::string& name : acknowledged) {
    EXPECT_TRUE(visible.count(name))
        << "acknowledged group commit '" << name << "' lost after crash at "
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    GroupSites, GroupCommitCrashMatrixTest,
    ::testing::Values("wal.flush=crash(hit=1)",  //
                      "wal.flush=crash(hit=3)",  //
                      "wal.append=crash(hit=5)"));

// Error-mode wedge containment, in-process: a failed barrier fails every
// commit in the batch, wedges the log against further work, and recovery
// after a simulated crash keeps exactly the commits acknowledged before the
// wedge.
TEST_F(CrashMatrixFixtureBase, GroupBarrierErrorWedgesAndRecoversPrefix) {
  const std::string prefix = dir_ + "/db";
  StorageEngine engine;
  ASSERT_TRUE(engine.Open(prefix).ok());
  auto file = engine.CreateHeapFile();
  ASSERT_TRUE(file.ok());

  std::set<std::string> acknowledged;
  {
    auto txn = engine.Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(engine.Insert(*txn, *file, Bytes("base")).ok());
    ASSERT_TRUE(engine.Commit(*txn).ok());
    acknowledged.insert("base");
  }
  auto loser = engine.Begin();
  ASSERT_TRUE(loser.ok());
  ASSERT_TRUE(engine.Insert(*loser, *file, Bytes("loser")).ok());

  // The next barrier (and every later one) fails: the first group batch all
  // errors out and the log wedges.
  ASSERT_TRUE(FailPointRegistry::Instance().Enable("wal.flush", "error").ok());
  std::atomic<int> commit_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kGroupThreads);
  for (int t = 0; t < kGroupThreads; ++t) {
    threads.emplace_back([&engine, &file, &commit_failures, t] {
      const std::string name = "post-wedge-" + std::to_string(t);
      auto txn = engine.Begin();
      if (!txn.ok()) {
        commit_failures.fetch_add(1);
        return;
      }
      if (!engine.Insert(*txn, *file, Bytes(name)).ok() ||
          !engine.Commit(*txn).ok()) {
        commit_failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Every member of the failed batch saw the error; none was acked.
  EXPECT_EQ(commit_failures.load(), kGroupThreads);
  EXPECT_TRUE(engine.log_manager()->wedged());
  EXPECT_EQ(engine.log_manager()->sync_count(), 1u);  // the base commit only
  FailPointRegistry::Instance().DisableAll();

  engine.SimulateCrash();

  StorageEngine reopened;
  ASSERT_TRUE(reopened.Open(prefix).ok());
  auto txn = reopened.Begin();
  ASSERT_TRUE(txn.ok());
  std::set<std::string> visible;
  ASSERT_TRUE(reopened
                  .Scan(*txn, *file,
                        [&](const storage::Rid&,
                            const std::vector<std::uint8_t>& rec) {
                          visible.insert(std::string(rec.begin(), rec.end()));
                          return Status::OK();
                        })
                  .ok());
  ASSERT_TRUE(reopened.Commit(*txn).ok());
  ASSERT_TRUE(reopened.Close().ok());

  EXPECT_TRUE(visible.count("base"));
  EXPECT_FALSE(visible.count("loser"));
}

// Async commit across a crash: acks that the durable watermark had not yet
// covered may be lost (the documented trade), but everything acknowledged
// by a completed WaitWalDurable must survive, and the loser never returns.
TEST_F(CrashMatrixFixtureBase, AsyncCommitCrashKeepsDurableWatermarkPrefix) {
  const std::string prefix = dir_ + "/db";
  const std::string progress_path = dir_ + "/progress";

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    int fd = ::open(progress_path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd < 0) std::_Exit(7);
    StorageEngine engine;
    if (!engine.Open(prefix).ok()) std::_Exit(7);
    auto file = engine.CreateHeapFile();
    if (!file.ok()) std::_Exit(7);
    RecordProgress(fd, "file " + std::to_string(*file));
    auto loser = engine.Begin();
    if (!loser.ok() || !engine.Insert(*loser, *file, Bytes("loser")).ok()) {
      std::_Exit(7);
    }
    engine.set_commit_durability(storage::CommitDurability::kAsync);
    if (!FailPointRegistry::Instance()
             .Configure("wal.flush=crash(hit=2)")
             .ok()) {
      std::_Exit(7);
    }
    for (int i = 0; i < kRounds; ++i) {
      const std::string name = "round-" + std::to_string(i);
      auto txn = engine.Begin();
      if (!txn.ok()) break;
      if (!engine.Insert(*txn, *file, Bytes(name)).ok()) {
        (void)engine.Abort(*txn);
        continue;
      }
      if (engine.Commit(*txn).ok()) RecordProgress(fd, "acked " + name);
      // Converge the watermark; only then is the commit crash-proof.
      if (engine.WaitWalDurable().ok()) RecordProgress(fd, "durable " + name);
    }
    std::_Exit(0);
  }

  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
  ASSERT_TRUE(WIFEXITED(wait_status))
      << "child killed by signal " << WTERMSIG(wait_status);
  const int code = WEXITSTATUS(wait_status);
  ASSERT_TRUE(code == kFailPointCrashExitCode || code == 0)
      << "unexpected child exit code " << code;

  std::set<std::string> durable;
  PageId file = storage::kInvalidPageId;
  std::ifstream progress(progress_path);
  std::string line;
  while (std::getline(progress, line)) {
    std::istringstream in(line);
    std::string verb, arg;
    in >> verb >> arg;
    if (verb == "file") {
      file = static_cast<PageId>(std::stoul(arg));
    } else if (verb == "durable") {
      durable.insert(arg);
    }
  }
  ASSERT_NE(file, storage::kInvalidPageId);

  StorageEngine engine;
  ASSERT_TRUE(engine.Open(prefix).ok());
  auto txn = engine.Begin();
  ASSERT_TRUE(txn.ok());
  std::set<std::string> visible;
  ASSERT_TRUE(engine
                  .Scan(*txn, file,
                        [&](const storage::Rid&,
                            const std::vector<std::uint8_t>& rec) {
                          visible.insert(std::string(rec.begin(), rec.end()));
                          return Status::OK();
                        })
                  .ok());
  ASSERT_TRUE(engine.Commit(*txn).ok());
  ASSERT_TRUE(engine.Close().ok());

  EXPECT_FALSE(visible.count("loser"))
      << "uncommitted transaction resurrected after crash";
  for (const std::string& name : durable) {
    EXPECT_TRUE(visible.count(name))
        << "watermark-covered async commit '" << name << "' lost after crash";
  }
}

}  // namespace
}  // namespace sentinel
