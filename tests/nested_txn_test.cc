#include "txn/nested_txn.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace sentinel::txn {
namespace {

using storage::LockMode;

TEST(NestedTxnTest, BeginCommitLifecycle) {
  NestedTransactionManager ntm;
  auto sub = ntm.Begin(1);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(ntm.IsActive(*sub));
  EXPECT_EQ(*ntm.Depth(*sub), 1);
  EXPECT_EQ(*ntm.TopOf(*sub), 1u);
  ASSERT_TRUE(ntm.Commit(*sub).ok());
  EXPECT_FALSE(ntm.IsActive(*sub));
}

TEST(NestedTxnTest, NestingDepthTracked) {
  NestedTransactionManager ntm;
  auto s1 = ntm.Begin(1);
  auto s2 = ntm.Begin(1, *s1);
  auto s3 = ntm.Begin(1, *s2);
  EXPECT_EQ(*ntm.Depth(*s3), 3);
  // Parent cannot commit with live children.
  EXPECT_FALSE(ntm.Commit(*s1).ok());
  ASSERT_TRUE(ntm.Commit(*s3).ok());
  ASSERT_TRUE(ntm.Commit(*s2).ok());
  ASSERT_TRUE(ntm.Commit(*s1).ok());
}

TEST(NestedTxnTest, ParentMustBeActiveAndSameTop) {
  NestedTransactionManager ntm;
  auto s1 = ntm.Begin(1);
  EXPECT_FALSE(ntm.Begin(2, *s1).ok());  // wrong top
  ASSERT_TRUE(ntm.Commit(*s1).ok());
  EXPECT_FALSE(ntm.Begin(1, *s1).ok());  // no longer active
}

TEST(NestedTxnTest, ChildMayAcquireWhatAncestorHolds) {
  NestedTransactionManager ntm;
  auto parent = ntm.Begin(1);
  ASSERT_TRUE(ntm.Acquire(*parent, "k", LockMode::kExclusive).ok());
  auto child = ntm.Begin(1, *parent);
  // Moss rule: conflicting holder is an ancestor -> grant.
  EXPECT_TRUE(ntm.Acquire(*child, "k", LockMode::kExclusive).ok());
  ASSERT_TRUE(ntm.Commit(*child).ok());
  ASSERT_TRUE(ntm.Commit(*parent).ok());
}

TEST(NestedTxnTest, SiblingsConflictOnExclusive) {
  NestedTransactionManager ntm(
      NestedTransactionManager::Options{std::chrono::milliseconds(100)});
  auto parent = ntm.Begin(1);
  auto s1 = ntm.Begin(1, *parent);
  auto s2 = ntm.Begin(1, *parent);
  ASSERT_TRUE(ntm.Acquire(*s1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(ntm.Acquire(*s2, "k", LockMode::kExclusive).IsLockTimeout());
  // Shared locks between siblings are fine.
  ASSERT_TRUE(ntm.Acquire(*s1, "s", LockMode::kShared).ok());
  EXPECT_TRUE(ntm.Acquire(*s2, "s", LockMode::kShared).ok());
}

TEST(NestedTxnTest, CommitInheritsLocksToParent) {
  NestedTransactionManager ntm(
      NestedTransactionManager::Options{std::chrono::milliseconds(100)});
  auto parent = ntm.Begin(1);
  auto child = ntm.Begin(1, *parent);
  ASSERT_TRUE(ntm.Acquire(*child, "k", LockMode::kExclusive).ok());
  ASSERT_TRUE(ntm.Commit(*child).ok());
  // A new sibling still conflicts: the lock now belongs to the parent.
  auto sibling = ntm.Begin(1, *parent);
  EXPECT_TRUE(
      ntm.Acquire(*sibling, "k", LockMode::kExclusive).ok());  // child of holder
  // But a subtransaction of ANOTHER top conflicts.
  auto other = ntm.Begin(2);
  EXPECT_FALSE(ntm.Acquire(*other, "k", LockMode::kExclusive).ok());
}

TEST(NestedTxnTest, AbortReleasesLocks) {
  NestedTransactionManager ntm(
      NestedTransactionManager::Options{std::chrono::milliseconds(100)});
  auto s1 = ntm.Begin(1);
  auto s2 = ntm.Begin(2);
  ASSERT_TRUE(ntm.Acquire(*s1, "k", LockMode::kExclusive).ok());
  EXPECT_FALSE(ntm.Acquire(*s2, "k", LockMode::kExclusive).ok());
  ASSERT_TRUE(ntm.Abort(*s1).ok());
  EXPECT_TRUE(ntm.Acquire(*s2, "k", LockMode::kExclusive).ok());
}

TEST(NestedTxnTest, RootCommitRetainsForTopUntilEndTop) {
  NestedTransactionManager ntm(
      NestedTransactionManager::Options{std::chrono::milliseconds(100)});
  auto sub = ntm.Begin(1);
  ASSERT_TRUE(ntm.Acquire(*sub, "k", LockMode::kExclusive).ok());
  ASSERT_TRUE(ntm.Commit(*sub).ok());
  // Lock retained on behalf of top txn 1: conflicting top 2 blocked.
  auto other = ntm.Begin(2);
  EXPECT_FALSE(ntm.Acquire(*other, "k", LockMode::kExclusive).ok());
  // Same top's later subtransaction shares the retained lock.
  auto same_top = ntm.Begin(1);
  EXPECT_TRUE(ntm.Acquire(*same_top, "k", LockMode::kExclusive).ok());
  ASSERT_TRUE(ntm.Commit(*same_top).ok());
  ntm.EndTop(1);
  EXPECT_TRUE(ntm.Acquire(*other, "k", LockMode::kExclusive).ok());
}

TEST(NestedTxnTest, BlockedSiblingWakesOnRelease) {
  NestedTransactionManager ntm(
      NestedTransactionManager::Options{std::chrono::seconds(5)});
  auto parent = ntm.Begin(1);
  auto s1 = ntm.Begin(1, *parent);
  ASSERT_TRUE(ntm.Acquire(*s1, "k", LockMode::kExclusive).ok());
  std::atomic<bool> granted{false};
  auto s2 = ntm.Begin(1, *parent);
  std::thread waiter([&] {
    ASSERT_TRUE(ntm.Acquire(*s2, "k", LockMode::kExclusive).ok());
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted);
  ASSERT_TRUE(ntm.Abort(*s1).ok());
  waiter.join();
  EXPECT_TRUE(granted);
}

TEST(NestedTxnTest, LockTableDrainsAsSubtxnsFinish) {
  // Finishing a subtransaction must erase lock-table entries it leaves empty
  // (via its held-key index) rather than parking them until EndTop — the
  // table size tracks live locks, not historical ones.
  NestedTransactionManager ntm;
  auto parent = ntm.Begin(1);
  auto child = ntm.Begin(1, *parent);
  ASSERT_TRUE(ntm.Acquire(*child, "a", LockMode::kExclusive).ok());
  ASSERT_TRUE(ntm.Acquire(*child, "b", LockMode::kShared).ok());
  ASSERT_TRUE(ntm.Acquire(*parent, "c", LockMode::kExclusive).ok());
  EXPECT_EQ(ntm.locked_key_count(), 3u);
  // Commit inherits a and b to the parent: entries stay live.
  ASSERT_TRUE(ntm.Commit(*child).ok());
  EXPECT_EQ(ntm.locked_key_count(), 3u);
  // Abort of the parent drops all three immediately — no EndTop needed.
  ASSERT_TRUE(ntm.Abort(*parent).ok());
  EXPECT_EQ(ntm.locked_key_count(), 0u);

  // Depth-1 commit retains for the top; EndTop drains the retained set.
  auto sub = ntm.Begin(2);
  ASSERT_TRUE(ntm.Acquire(*sub, "k", LockMode::kExclusive).ok());
  ASSERT_TRUE(ntm.Commit(*sub).ok());
  EXPECT_EQ(ntm.locked_key_count(), 1u);
  ntm.EndTop(2);
  EXPECT_EQ(ntm.locked_key_count(), 0u);
}

TEST(NestedTxnTest, ReacquiringAHeldKeyDoesNotDuplicate) {
  // Upgrades/re-acquires reuse the existing holder entry; the held-key index
  // must not double-count, or release would try to drop the key twice.
  NestedTransactionManager ntm;
  auto sub = ntm.Begin(1);
  ASSERT_TRUE(ntm.Acquire(*sub, "k", LockMode::kShared).ok());
  ASSERT_TRUE(ntm.Acquire(*sub, "k", LockMode::kExclusive).ok());
  EXPECT_EQ(ntm.locked_key_count(), 1u);
  ASSERT_TRUE(ntm.Abort(*sub).ok());
  EXPECT_EQ(ntm.locked_key_count(), 0u);
  ntm.EndTop(1);
}

TEST(NestedTxnTest, LockWaitTimeIsAccounted) {
  NestedTransactionManager ntm(
      NestedTransactionManager::Options{std::chrono::seconds(5)});
  auto parent = ntm.Begin(1);
  auto s1 = ntm.Begin(1, *parent);
  auto s2 = ntm.Begin(1, *parent);
  ASSERT_TRUE(ntm.Acquire(*s1, "k", LockMode::kExclusive).ok());
  EXPECT_EQ(ntm.LockWaitNs(*s2), 0u);
  std::thread waiter([&] {
    ASSERT_TRUE(ntm.Acquire(*s2, "k", LockMode::kExclusive).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(ntm.Abort(*s1).ok());
  waiter.join();
  // s2 blocked for ~50ms; the accounting only needs to be non-zero and sane.
  EXPECT_GT(ntm.LockWaitNs(*s2), 1000000u);  // > 1ms
}

TEST(NestedTxnTest, EndTopCleansEverything) {
  NestedTransactionManager ntm;
  auto s1 = ntm.Begin(7);
  auto s2 = ntm.Begin(7, *s1);
  ASSERT_TRUE(ntm.Acquire(*s2, "a", LockMode::kShared).ok());
  ASSERT_TRUE(ntm.Acquire(*s1, "b", LockMode::kExclusive).ok());
  ntm.EndTop(7);
  EXPECT_EQ(ntm.active_count(), 0u);
  EXPECT_EQ(ntm.locked_key_count(), 0u);
}

}  // namespace
}  // namespace sentinel::txn
