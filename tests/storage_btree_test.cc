#include "storage/btree.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

namespace sentinel::storage {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("sentinel_btree_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".db"))
                .string();
    std::remove(path_.c_str());
    ASSERT_TRUE(disk_.Open(path_).ok());
    pool_ = std::make_unique<BufferPool>(&disk_, 64);
    auto root = BTree::Create(pool_.get());
    ASSERT_TRUE(root.ok());
    tree_ = std::make_unique<BTree>(pool_.get(), *root);
  }
  void TearDown() override {
    tree_.reset();
    pool_.reset();
    (void)disk_.Close();
    std::remove(path_.c_str());
  }

  static Rid MakeRid(std::uint64_t key) {
    return Rid{static_cast<PageId>(key * 7 + 1),
               static_cast<SlotId>(key % 200)};
  }

  std::string path_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, EmptyTreeLookupFails) {
  EXPECT_TRUE(tree_->Lookup(42).status().IsNotFound());
  EXPECT_EQ(*tree_->Size(), 0u);
  EXPECT_EQ(*tree_->Height(), 1);
}

TEST_F(BTreeTest, InsertAndLookup) {
  ASSERT_TRUE(tree_->Insert(10, MakeRid(10)).ok());
  ASSERT_TRUE(tree_->Insert(5, MakeRid(5)).ok());
  ASSERT_TRUE(tree_->Insert(20, MakeRid(20)).ok());
  EXPECT_EQ(*tree_->Lookup(10), MakeRid(10));
  EXPECT_EQ(*tree_->Lookup(5), MakeRid(5));
  EXPECT_EQ(*tree_->Lookup(20), MakeRid(20));
  EXPECT_TRUE(tree_->Lookup(15).status().IsNotFound());
  EXPECT_EQ(*tree_->Size(), 3u);
}

TEST_F(BTreeTest, InsertOverwrites) {
  ASSERT_TRUE(tree_->Insert(1, Rid{10, 1}).ok());
  ASSERT_TRUE(tree_->Insert(1, Rid{99, 2}).ok());
  EXPECT_EQ(tree_->Lookup(1)->page_id, 99u);
  EXPECT_EQ(*tree_->Size(), 1u);
}

TEST_F(BTreeTest, DeleteRemovesKey) {
  ASSERT_TRUE(tree_->Insert(1, MakeRid(1)).ok());
  ASSERT_TRUE(tree_->Insert(2, MakeRid(2)).ok());
  ASSERT_TRUE(tree_->Delete(1).ok());
  EXPECT_TRUE(tree_->Lookup(1).status().IsNotFound());
  EXPECT_TRUE(tree_->Lookup(2).ok());
  EXPECT_TRUE(tree_->Delete(1).IsNotFound());
  EXPECT_EQ(*tree_->Size(), 1u);
}

TEST_F(BTreeTest, SequentialInsertSplitsToMultipleLevels) {
  constexpr std::uint64_t kN = 2000;  // > leaf capacity (254), forces splits
  for (std::uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(tree_->Insert(k, MakeRid(k)).ok()) << k;
  }
  EXPECT_EQ(*tree_->Size(), kN);
  EXPECT_GE(*tree_->Height(), 2);
  for (std::uint64_t k = 0; k < kN; ++k) {
    auto rid = tree_->Lookup(k);
    ASSERT_TRUE(rid.ok()) << k;
    EXPECT_EQ(*rid, MakeRid(k)) << k;
  }
}

TEST_F(BTreeTest, ReverseInsertAlsoWorks) {
  constexpr std::uint64_t kN = 1500;
  for (std::uint64_t k = kN; k > 0; --k) {
    ASSERT_TRUE(tree_->Insert(k, MakeRid(k)).ok()) << k;
  }
  EXPECT_EQ(*tree_->Size(), kN);
  for (std::uint64_t k = 1; k <= kN; ++k) {
    ASSERT_TRUE(tree_->Lookup(k).ok()) << k;
  }
}

TEST_F(BTreeTest, ScanReturnsSortedRange) {
  for (std::uint64_t k = 0; k < 1000; k += 2) {  // even keys only
    ASSERT_TRUE(tree_->Insert(k, MakeRid(k)).ok());
  }
  std::vector<std::uint64_t> keys;
  ASSERT_TRUE(tree_->Scan(100, 200,
                          [&](std::uint64_t k, const Rid&) {
                            keys.push_back(k);
                            return Status::OK();
                          })
                  .ok());
  ASSERT_EQ(keys.size(), 51u);  // 100,102,...,200
  EXPECT_EQ(keys.front(), 100u);
  EXPECT_EQ(keys.back(), 200u);
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LT(keys[i - 1], keys[i]);
  }
}

TEST_F(BTreeTest, ScanEarlyStopPropagates) {
  for (std::uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree_->Insert(k, MakeRid(k)).ok());
  }
  int seen = 0;
  Status st = tree_->Scan(0, UINT64_MAX, [&](std::uint64_t, const Rid&) {
    if (++seen == 10) return Status::Internal("stop");
    return Status::OK();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(seen, 10);
}

TEST_F(BTreeTest, RootPageIdIsStableAcrossSplits) {
  const PageId root = tree_->root();
  for (std::uint64_t k = 0; k < 3000; ++k) {
    ASSERT_TRUE(tree_->Insert(k, MakeRid(k)).ok());
  }
  EXPECT_EQ(tree_->root(), root);
}

TEST_F(BTreeTest, PersistsAcrossReopen) {
  const PageId root = tree_->root();
  for (std::uint64_t k = 0; k < 800; ++k) {
    ASSERT_TRUE(tree_->Insert(k, MakeRid(k)).ok());
  }
  ASSERT_TRUE(pool_->FlushAll().ok());
  tree_.reset();
  pool_.reset();
  ASSERT_TRUE(disk_.Close().ok());

  DiskManager disk2;
  ASSERT_TRUE(disk2.Open(path_).ok());
  BufferPool pool2(&disk2, 64);
  BTree reopened(&pool2, root);
  EXPECT_EQ(*reopened.Size(), 800u);
  EXPECT_EQ(*reopened.Lookup(777), MakeRid(777));
  ASSERT_TRUE(disk2.Close().ok());
}

class BTreeRandomized : public ::testing::TestWithParam<int> {};

TEST_P(BTreeRandomized, MatchesReferenceMap) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("sentinel_btree_fuzz_" + std::to_string(::getpid()) + "_" +
        std::to_string(GetParam()) + ".db"))
          .string();
  std::remove(path.c_str());
  DiskManager disk;
  ASSERT_TRUE(disk.Open(path).ok());
  BufferPool pool(&disk, 64);
  auto root = BTree::Create(&pool);
  ASSERT_TRUE(root.ok());
  BTree tree(&pool, *root);

  std::uint64_t rng = static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(rng >> 33);
  };
  std::map<std::uint64_t, Rid> reference;
  for (int op = 0; op < 5000; ++op) {
    const std::uint64_t key = next() % 700;  // collisions likely
    const int kind = static_cast<int>(next() % 3);
    if (kind == 0 || kind == 1) {
      Rid rid{next() % 10000, static_cast<SlotId>(next() % 100)};
      ASSERT_TRUE(tree.Insert(key, rid).ok());
      reference[key] = rid;
    } else {
      Status st = tree.Delete(key);
      if (reference.erase(key) > 0) {
        EXPECT_TRUE(st.ok());
      } else {
        EXPECT_TRUE(st.IsNotFound());
      }
    }
  }
  EXPECT_EQ(*tree.Size(), reference.size());
  for (const auto& [key, rid] : reference) {
    auto found = tree.Lookup(key);
    ASSERT_TRUE(found.ok()) << key;
    EXPECT_EQ(*found, rid) << key;
  }
  // Full scan is sorted and complete.
  std::uint64_t prev = 0;
  bool first = true;
  std::size_t scanned = 0;
  ASSERT_TRUE(tree.Scan(0, UINT64_MAX,
                        [&](std::uint64_t k, const Rid&) {
                          if (!first) EXPECT_GT(k, prev);
                          prev = k;
                          first = false;
                          ++scanned;
                          return Status::OK();
                        })
                  .ok());
  EXPECT_EQ(scanned, reference.size());
  (void)disk.Close();
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeRandomized, ::testing::Range(1, 6));

}  // namespace
}  // namespace sentinel::storage
