#include <poll.h>
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "detector/event_types.h"
#include "ged/global_detector.h"
#include "net/event_bus_server.h"
#include "net/protocol.h"
#include "net/remote_client.h"
#include "net/socket_util.h"
#include "oodb/value.h"

namespace sentinel::net {
namespace {

using detector::EventModifier;
using detector::ParamContext;

bool WaitUntil(const std::function<bool()>& pred,
               std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Hand-rolled protocol speaker for tests that need to misbehave in ways
/// RemoteGedClient never would (stop reading, send illegal frames, hold a
/// session hostage).
struct RawClient {
  int fd = -1;
  FrameAssembler assembler;

  ~RawClient() { Close(); }

  Status Connect(int port) {
    auto fd_or = ConnectTcp("127.0.0.1", port);
    if (!fd_or.ok()) return fd_or.status();
    fd = *fd_or;
    return Status::OK();
  }

  Status Send(const std::string& frame) {
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return Status::IOError("raw send failed");
      sent += static_cast<std::size_t>(n);
    }
    return Status::OK();
  }

  /// Blocks until the next complete frame, the timeout, or peer close.
  Result<FrameAssembler::Frame> Expect(std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      FrameAssembler::Frame frame;
      auto ready = assembler.Next(&frame);
      if (!ready.ok()) return ready.status();
      if (*ready) return frame;
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return Status::IOError("timed out awaiting frame");
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - now)
                            .count();
      if (::poll(&pfd, 1, static_cast<int>(std::min<long long>(left, 50))) <=
          0) {
        continue;
      }
      char buf[4096];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) return Status::IOError("peer closed");
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return Status::IOError("raw recv failed");
      }
      assembler.Feed(buf, static_cast<std::size_t>(n));
    }
  }

  /// Drains frames until the server closes the connection.
  bool WaitClosed(std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      if (::poll(&pfd, 1, 50) <= 0) continue;
      char buf[4096];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0 && errno != EINTR && errno != EAGAIN) return true;
    }
    return false;
  }

  void Close() {
    if (fd >= 0) CloseQuietly(fd);
    fd = -1;
  }
};

class NetBusTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FailPointRegistry::Instance().DisableAll();
    server_.Stop();
  }

  Status StartServer(EventBusServer::Options opts = {}) {
    opts.port = 0;
    return server_.Start(opts);
  }

  RemoteGedClient::Options ClientOptions(const std::string& app) const {
    RemoteGedClient::Options o;
    o.port = server_.port();
    o.app_name = app;
    o.backoff_base = std::chrono::milliseconds(10);
    o.backoff_max = std::chrono::milliseconds(100);
    return o;
  }

  static std::shared_ptr<detector::ParamList> Params(int v) {
    auto p = std::make_shared<detector::ParamList>();
    p->Insert("v", oodb::Value::Int(v));
    return p;
  }

  /// Registers a raw session and consumes the Hello ack.
  Status RawHello(RawClient* raw, const std::string& app) {
    HelloMsg hello;
    hello.seq = 1;
    hello.app_name = app;
    SENTINEL_RETURN_NOT_OK(raw->Send(hello.Encode()));
    auto frame = raw->Expect(std::chrono::milliseconds(2000));
    if (!frame.ok()) return frame.status();
    if (frame->type != MessageType::kStatusReply) {
      return Status::Internal("expected STATUS reply to HELLO");
    }
    BytesReader reader(frame->body);
    auto reply = StatusReplyMsg::Decode(&reader);
    SENTINEL_RETURN_NOT_OK(reply.status());
    if (reply->code != WireCode::kOk) {
      return Status::Internal("HELLO refused: " + reply->message);
    }
    return Status::OK();
  }

  ged::GlobalEventDetector ged_;
  EventBusServer server_{&ged_};
};

TEST_F(NetBusTest, EndToEndDefineSubscribeNotifyPush) {
  ASSERT_TRUE(StartServer().ok());

  RemoteGedClient client(ClientOptions("appA"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.WaitConnected(std::chrono::milliseconds(5000)));
  EXPECT_TRUE(ged_.IsRegistered("appA"));

  ASSERT_TRUE(client
                  .DefineGlobalPrimitive("g_submit", "Order",
                                         EventModifier::kEnd, "void submit()")
                  .ok());

  std::mutex mu;
  std::condition_variable cv;
  std::vector<detector::Occurrence> got;
  ASSERT_TRUE(client
                  .Subscribe("g_submit", ParamContext::kRecent,
                             [&](const std::string& event,
                                 const detector::Occurrence& occ) {
                               EXPECT_EQ(event, "g_submit");
                               std::lock_guard<std::mutex> lock(mu);
                               got.push_back(occ);
                               cv.notify_all();
                             })
                  .ok());

  ASSERT_TRUE(client
                  .NotifyMethod("Order", 1, EventModifier::kEnd,
                                "void submit()", Params(42), 1)
                  .ok());

  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return !got.empty(); }))
        << "no detection pushed back to the client";
    auto v = got[0].Param("v");
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->AsInt(), 42);
  }

  const EventBusServerStats stats = server_.stats();
  EXPECT_GE(stats.notifies_received, 1u);
  EXPECT_GE(stats.dispatched, 1u);
  EXPECT_GE(stats.pushes_sent, 1u);
  EXPECT_EQ(stats.frame_errors, 0u);
  EXPECT_GE(client.stats().pushes_received, 1u);
  client.Stop();
}

TEST_F(NetBusTest, DefineAndSubscribeAreIdempotent) {
  ASSERT_TRUE(StartServer().ok());
  RemoteGedClient client(ClientOptions("appA"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.WaitConnected(std::chrono::milliseconds(5000)));

  ASSERT_TRUE(client
                  .DefineGlobalPrimitive("g_submit", "Order",
                                         EventModifier::kEnd, "void submit()")
                  .ok());
  EXPECT_TRUE(client
                  .DefineGlobalPrimitive("g_submit", "Order",
                                         EventModifier::kEnd, "void submit()")
                  .ok())
      << "re-declaring an existing global primitive must be a no-op";

  auto noop = [](const std::string&, const detector::Occurrence&) {};
  ASSERT_TRUE(client.Subscribe("g_submit", ParamContext::kRecent, noop).ok());
  EXPECT_TRUE(client.Subscribe("g_submit", ParamContext::kRecent, noop).ok())
      << "duplicate subscription must be accepted idempotently";
  client.Stop();
}

TEST_F(NetBusTest, DefineRejectsSpecMismatchAndCrossAppAliasing) {
  ASSERT_TRUE(StartServer().ok());
  RemoteGedClient client(ClientOptions("appA"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.WaitConnected(std::chrono::milliseconds(5000)));

  ASSERT_TRUE(client
                  .DefineGlobalPrimitive("g_submit", "Order",
                                         EventModifier::kEnd, "void submit()")
                  .ok());
  EXPECT_FALSE(client
                   .DefineGlobalPrimitive("g_submit", "Order",
                                          EventModifier::kBegin,
                                          "void submit()")
                   .ok())
      << "re-declaring with a different modifier must be refused";
  EXPECT_FALSE(client
                   .DefineGlobalPrimitive("g_submit", "Order",
                                          EventModifier::kEnd, "void cancel()")
                   .ok())
      << "re-declaring with a different method signature must be refused";

  RemoteGedClient other(ClientOptions("appB"));
  ASSERT_TRUE(other.Start().ok());
  ASSERT_TRUE(other.WaitConnected(std::chrono::milliseconds(5000)));
  EXPECT_FALSE(other
                   .DefineGlobalPrimitive("g_submit", "Order",
                                          EventModifier::kEnd, "void submit()")
                   .ok())
      << "another application must not silently alias the primitive";
  other.Stop();
  client.Stop();
}

TEST_F(NetBusTest, SessionLimitRejectsWithRetryLater) {
  EventBusServer::Options opts;
  opts.max_sessions = 1;
  ASSERT_TRUE(StartServer(opts).ok());

  RawClient first;
  ASSERT_TRUE(first.Connect(server_.port()).ok());
  ASSERT_TRUE(RawHello(&first, "holder").ok());

  RawClient second;
  ASSERT_TRUE(second.Connect(server_.port()).ok());
  auto verdict = second.Expect(std::chrono::milliseconds(2000));
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  ASSERT_EQ(verdict->type, MessageType::kStatusReply);
  BytesReader reader(verdict->body);
  auto reply = StatusReplyMsg::Decode(&reader);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->code, WireCode::kRetryLater);
  EXPECT_GT(reply->retry_after_ms, 0u);
  EXPECT_TRUE(second.WaitClosed(std::chrono::milliseconds(2000)));
  EXPECT_GE(server_.stats().rejected_sessions, 1u);

  // Freeing the slot readmits new sessions: the limit is admission control,
  // not a death sentence.
  first.Close();
  ASSERT_TRUE(WaitUntil([&] { return server_.session_count() == 0; },
                        std::chrono::milliseconds(5000)));
  RawClient third;
  ASSERT_TRUE(third.Connect(server_.port()).ok());
  EXPECT_TRUE(RawHello(&third, "holder").ok());
}

TEST_F(NetBusTest, ReconnectOfSameAppSupersedesOldSession) {
  ASSERT_TRUE(StartServer().ok());

  RawClient old_session;
  ASSERT_TRUE(old_session.Connect(server_.port()).ok());
  ASSERT_TRUE(RawHello(&old_session, "dup").ok());

  RawClient new_session;
  ASSERT_TRUE(new_session.Connect(server_.port()).ok());
  ASSERT_TRUE(RawHello(&new_session, "dup").ok())
      << "a reconnecting application must not be locked out by its own "
         "zombie session";

  // The zombie gets a BYE and the connection is closed under it.
  EXPECT_TRUE(old_session.WaitClosed(std::chrono::milliseconds(5000)));
  EXPECT_GE(server_.stats().superseded_sessions, 1u);
  EXPECT_TRUE(ged_.IsRegistered("dup"));
}

TEST_F(NetBusTest, ClientDisconnectUnregistersAppButKeepsDefinitions) {
  ASSERT_TRUE(StartServer().ok());
  {
    RemoteGedClient client(ClientOptions("ephemeral"));
    ASSERT_TRUE(client.Start().ok());
    ASSERT_TRUE(client.WaitConnected(std::chrono::milliseconds(5000)));
    ASSERT_TRUE(client
                    .DefineGlobalPrimitive("g_eph", "Order",
                                           EventModifier::kEnd, "void f()")
                    .ok());
    client.Stop();
  }
  // Registration is liveness: it must drop with the session, leaving no
  // half-registered application node behind.
  ASSERT_TRUE(WaitUntil([&] { return !ged_.IsRegistered("ephemeral"); },
                        std::chrono::milliseconds(5000)));
  EXPECT_TRUE(ged_.graph()->Find("g_eph").ok())
      << "definitions are shared state and survive the session";

  // The name is reusable immediately, and the old definition is found.
  RemoteGedClient reborn(ClientOptions("ephemeral"));
  ASSERT_TRUE(reborn.Start().ok());
  ASSERT_TRUE(reborn.WaitConnected(std::chrono::milliseconds(5000)));
  EXPECT_TRUE(reborn
                  .DefineGlobalPrimitive("g_eph", "Order", EventModifier::kEnd,
                                         "void f()")
                  .ok());
  reborn.Stop();
}

TEST_F(NetBusTest, NotifyBeforeHelloIsAProtocolError) {
  ASSERT_TRUE(StartServer().ok());
  RawClient raw;
  ASSERT_TRUE(raw.Connect(server_.port()).ok());
  BytesWriter body;
  detector::PrimitiveOccurrence occ;
  occ.class_name = "Order";
  occ.method_signature = "void f()";
  EncodeOccurrence(occ, &body);
  ASSERT_TRUE(raw.Send(EncodeFrame(MessageType::kNotify, body)).ok());
  EXPECT_TRUE(raw.WaitClosed(std::chrono::milliseconds(5000)));
}

TEST_F(NetBusTest, ServerOnlyFrameFromClientDropsConnection) {
  ASSERT_TRUE(StartServer().ok());
  RawClient raw;
  ASSERT_TRUE(raw.Connect(server_.port()).ok());
  ASSERT_TRUE(RawHello(&raw, "rogue").ok());

  EventPushMsg illegal;
  illegal.event = "nope";
  ASSERT_TRUE(raw.Send(illegal.Encode()).ok());
  EXPECT_TRUE(raw.WaitClosed(std::chrono::milliseconds(5000)));
  EXPECT_GE(server_.stats().frame_errors, 1u);
  // The rogue's registration was torn down with the session.
  EXPECT_TRUE(WaitUntil([&] { return !ged_.IsRegistered("rogue"); },
                        std::chrono::milliseconds(5000)));
}

TEST_F(NetBusTest, IdleSessionIsReaped) {
  EventBusServer::Options opts;
  opts.heartbeat_interval = std::chrono::milliseconds(30);
  opts.idle_timeout = std::chrono::milliseconds(120);
  ASSERT_TRUE(StartServer(opts).ok());

  RawClient mute;
  ASSERT_TRUE(mute.Connect(server_.port()).ok());
  ASSERT_TRUE(RawHello(&mute, "mute").ok());
  // Never answer the pings; the watchdog timer must reap us.
  EXPECT_TRUE(mute.WaitClosed(std::chrono::milliseconds(5000)));
  EXPECT_GE(server_.stats().idle_disconnects, 1u);
  EXPECT_GE(server_.stats().pings_sent, 1u);
}

TEST_F(NetBusTest, HeartbeatKeepsAQuietClientAlive) {
  EventBusServer::Options opts;
  opts.heartbeat_interval = std::chrono::milliseconds(40);
  opts.idle_timeout = std::chrono::milliseconds(160);
  ASSERT_TRUE(StartServer(opts).ok());

  RemoteGedClient client(ClientOptions("quiet"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.WaitConnected(std::chrono::milliseconds(5000)));
  // Several idle windows pass; the PING/PONG exchange must keep the
  // session off the idle reaper's list.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(server_.stats().idle_disconnects, 0u);
  EXPECT_EQ(client.stats().disconnects, 0u);
  client.Stop();
}

TEST_F(NetBusTest, AdmissionQueueShedsWithRetryLaterAndRecovers) {
  EventBusServer::Options opts;
  opts.admission_capacity = 4;
  opts.retry_after_ms = 10;
  ASSERT_TRUE(StartServer(opts).ok());

  // Stall (and drop inside) the dispatcher so the admission queue backs up.
  ASSERT_TRUE(FailPointRegistry::Instance()
                  .Enable("net.server.dispatch", "delay(ms=20)")
                  .ok());

  RemoteGedClient client(ClientOptions("flood"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.WaitConnected(std::chrono::milliseconds(5000)));

  detector::PrimitiveOccurrence occ;
  occ.class_name = "Order";
  occ.modifier = EventModifier::kEnd;
  occ.method_signature = "void submit()";
  occ.oid = 1;
  occ.txn = 1;
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(client.Notify(occ).ok());
  }

  // The server must shed rather than grow, and the client must hear the
  // typed RETRY_LATER verdict.
  EXPECT_TRUE(WaitUntil([&] { return server_.stats().sheds >= 1; },
                        std::chrono::seconds(10)));
  EXPECT_TRUE(WaitUntil([&] { return client.stats().sheds_received >= 1; },
                        std::chrono::seconds(10)));

  // Recovery: disarm the stall, and the backlog drains without a restart.
  FailPointRegistry::Instance().DisableAll();
  EXPECT_TRUE(WaitUntil(
      [&] {
        return server_.stats().admission_depth == 0 && !server_.overloaded();
      },
      std::chrono::seconds(10)));

  // The pipe still works end to end after the storm.
  const std::uint64_t before = server_.stats().dispatched;
  ASSERT_TRUE(client.Notify(occ).ok());
  EXPECT_TRUE(WaitUntil([&] { return server_.stats().dispatched > before; },
                        std::chrono::seconds(10)));
  client.Stop();
}

TEST_F(NetBusTest, SlowConsumerIsDisconnectedNotWedged) {
  EventBusServer::Options opts;
  opts.outbound_max_bytes = 64 * 1024;
  ASSERT_TRUE(StartServer(opts).ok());

  // Producer defines the event; the raw subscriber then stops reading.
  RemoteGedClient producer(ClientOptions("producer"));
  ASSERT_TRUE(producer.Start().ok());
  ASSERT_TRUE(producer.WaitConnected(std::chrono::milliseconds(5000)));
  ASSERT_TRUE(producer
                  .DefineGlobalPrimitive("g_bulk", "Order",
                                         EventModifier::kEnd, "void bulk()")
                  .ok());

  RawClient hog;
  ASSERT_TRUE(hog.Connect(server_.port()).ok());
  ASSERT_TRUE(RawHello(&hog, "hog").ok());
  SubscribeMsg sub;
  sub.seq = 2;
  sub.event = "g_bulk";
  sub.context = ParamContext::kRecent;
  ASSERT_TRUE(hog.Send(sub.Encode()).ok());
  auto ack = hog.Expect(std::chrono::milliseconds(2000));
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack->type, MessageType::kStatusReply);

  // 16 KiB per detection, never read: the kernel buffers fill, the
  // outbound queue passes its budget, and the hog is cut loose.
  auto params = std::make_shared<detector::ParamList>();
  params->Insert("blob", oodb::Value::String(std::string(16 * 1024, 'x')));
  detector::PrimitiveOccurrence occ;
  occ.class_name = "Order";
  occ.modifier = EventModifier::kEnd;
  occ.method_signature = "void bulk()";
  occ.oid = 1;
  occ.txn = 1;
  occ.params = params;
  for (int i = 0; i < 256 && server_.stats().slow_consumer_disconnects == 0;
       ++i) {
    ASSERT_TRUE(producer.Notify(occ).ok());
    if (i % 32 == 31) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  EXPECT_TRUE(
      WaitUntil([&] { return server_.stats().slow_consumer_disconnects >= 1; },
                std::chrono::seconds(20)));
  // The producer session is unaffected — one slow consumer cannot take the
  // daemon (or its neighbours) down.
  EXPECT_TRUE(producer.connected());
  const std::uint64_t before = server_.stats().dispatched;
  ASSERT_TRUE(producer
                  .NotifyMethod("Order", 2, EventModifier::kEnd, "void bulk()",
                                Params(1), 1)
                  .ok());
  EXPECT_TRUE(WaitUntil([&] { return server_.stats().dispatched > before; },
                        std::chrono::seconds(10)));
  producer.Stop();
}

TEST_F(NetBusTest, StatsJsonSmoke) {
  ASSERT_TRUE(StartServer().ok());
  RemoteGedClient client(ClientOptions("appA"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.WaitConnected(std::chrono::milliseconds(5000)));

  const std::string server_json = server_.StatsJson();
  EXPECT_NE(server_json.find("\"accepted\""), std::string::npos);
  EXPECT_NE(server_json.find("\"admission_depth\""), std::string::npos);
  const std::string client_json = client.StatsJson();
  EXPECT_NE(client_json.find("\"connected\""), std::string::npos);
  client.Stop();
}

}  // namespace
}  // namespace sentinel::net
