#ifndef SENTINEL_TESTS_DETECTOR_TEST_UTIL_H_
#define SENTINEL_TESTS_DETECTOR_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "detector/event_types.h"
#include "detector/local_detector.h"

namespace sentinel::detector {

/// Test sink recording every delivered occurrence with its context.
class RecordingSink : public EventSink {
 public:
  struct Hit {
    Occurrence occurrence;
    ParamContext context;
  };

  void OnEvent(const Occurrence& occurrence, ParamContext context) override {
    hits.push_back(Hit{occurrence, context});
  }

  std::size_t CountIn(ParamContext context) const {
    std::size_t n = 0;
    for (const auto& hit : hits) {
      if (hit.context == context) ++n;
    }
    return n;
  }

  void Clear() { hits.clear(); }

  std::vector<Hit> hits;
};

/// Signals `event_name`'s (class, method, modifier) notification carrying a
/// single int parameter `v`.
inline void Fire(LocalEventDetector* det, const std::string& class_name,
                 const std::string& method, int v, TxnId txn = 1,
                 oodb::Oid oid = 100,
                 EventModifier modifier = EventModifier::kEnd) {
  auto params = std::make_shared<ParamList>();
  params->Insert("v", oodb::Value::Int(v));
  det->Notify(class_name, oid, modifier, method, params, txn);
}

}  // namespace sentinel::detector

#endif  // SENTINEL_TESTS_DETECTOR_TEST_UTIL_H_
