// Live monitoring plane: Prometheus exposition shape (le ordering, cumulative
// monotone buckets, label escaping), the embedded HTTP monitor server, the
// health watchdog's stall predicates and rate-limited postmortems, and the
// end-to-end acceptance path — a failpoint-induced scheduler stall flips
// /healthz to 503 and triggers exactly one automatic postmortem. Suite names
// start with Obs* so the TSan CI job's --gtest_filter picks them up.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/active_database.h"
#include "obs/monitor_server.h"
#include "obs/prometheus.h"
#include "obs/watchdog.h"

namespace sentinel {
namespace {

using core::ActiveDatabase;
using obs::HealthState;
using obs::LatencyHistogram;
using obs::MonitorSample;
using obs::MonitorServer;
using obs::PromWriter;
using obs::Watchdog;

// ---------------------------------------------------------------------------
// Prometheus exposition shape
// ---------------------------------------------------------------------------

TEST(ObsPromTest, CounterEmitsHelpAndTypeOncePerFamily) {
  PromWriter p;
  p.Counter("x_total", "Things.", {{"a", "1"}}, 3);
  p.Counter("x_total", "Things.", {{"a", "2"}}, 5);
  const std::string out = p.Take();
  EXPECT_EQ(out,
            "# HELP x_total Things.\n"
            "# TYPE x_total counter\n"
            "x_total{a=\"1\"} 3\n"
            "x_total{a=\"2\"} 5\n");
}

TEST(ObsPromTest, LabelValuesAreEscaped) {
  EXPECT_EQ(PromWriter::EscapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  PromWriter p;
  p.Gauge("g", "h", {{"k", "v\"w\n"}}, 1);
  EXPECT_NE(p.str().find("g{k=\"v\\\"w\\n\"} 1\n"), std::string::npos);
}

/// Parses `<name>_bucket{...le="<le>"} <value>` lines of one family.
struct BucketLine {
  std::string le;
  std::uint64_t value = 0;
};
std::vector<BucketLine> ParseBuckets(const std::string& text,
                                     const std::string& family) {
  std::vector<BucketLine> out;
  std::istringstream in(text);
  std::string line;
  const std::string prefix = family + "_bucket{";
  while (std::getline(in, line)) {
    if (line.compare(0, prefix.size(), prefix) != 0) continue;
    const auto le_pos = line.find("le=\"");
    const auto le_end = line.find('"', le_pos + 4);
    const auto space = line.rfind(' ');
    BucketLine b;
    b.le = line.substr(le_pos + 4, le_end - le_pos - 4);
    b.value = std::strtoull(line.c_str() + space + 1, nullptr, 10);
    out.push_back(b);
  }
  return out;
}

TEST(ObsPromTest, HistogramBucketsAreCumulativeMonotoneAndLeOrdered) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(100);
  h.Record(100);
  h.Record(100000);
  PromWriter p;
  p.Histogram("lat_ns", "Latency.", {}, h.TakeSnapshot());
  const std::string out = p.Take();

  const auto buckets = ParseBuckets(out, "lat_ns");
  ASSERT_GE(buckets.size(), 3u);
  EXPECT_EQ(buckets.back().le, "+Inf");
  EXPECT_EQ(buckets.back().value, 4u);  // +Inf bucket == count
  std::uint64_t prev_le = 0;
  std::uint64_t prev_value = 0;
  bool first = true;
  for (std::size_t i = 0; i + 1 < buckets.size(); ++i) {
    const std::uint64_t le = std::strtoull(buckets[i].le.c_str(), nullptr, 10);
    if (!first) {
      EXPECT_GT(le, prev_le) << "le values must increase";
    }
    EXPECT_GE(buckets[i].value, prev_value) << "buckets must be cumulative";
    prev_le = le;
    prev_value = buckets[i].value;
    first = false;
  }
  EXPECT_GE(buckets.back().value, prev_value);
  // _sum and _count close the family.
  EXPECT_NE(out.find("lat_ns_sum 100200\n"), std::string::npos);
  EXPECT_NE(out.find("lat_ns_count 4\n"), std::string::npos);
  // Power-of-two bounds: 100 lands in [64,128) => le="127" must appear.
  EXPECT_NE(out.find("le=\"127\""), std::string::npos);
}

TEST(ObsPromTest, HistogramElidesTrailingZeroBuckets) {
  LatencyHistogram h;
  h.Record(1);  // bucket 1 is the last non-empty one
  PromWriter p;
  p.Histogram("x_ns", "X.", {}, h.TakeSnapshot());
  const auto buckets = ParseBuckets(p.str(), "x_ns");
  // le="0", le="1", le="+Inf" — the other 46 buckets are elided.
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].le, "0");
  EXPECT_EQ(buckets[1].le, "1");
  EXPECT_EQ(buckets[2].le, "+Inf");
  EXPECT_EQ(buckets[2].value, 1u);
}

TEST(ObsPromTest, HistogramLabelsRideEverySeries) {
  LatencyHistogram h;
  h.Record(5);
  PromWriter p;
  p.Histogram("r_ns", "R.", {{"rule", "audit"}}, h.TakeSnapshot());
  const std::string out = p.str();
  EXPECT_NE(out.find("r_ns_bucket{rule=\"audit\",le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("r_ns_sum{rule=\"audit\"} 5\n"), std::string::npos);
  EXPECT_NE(out.find("r_ns_count{rule=\"audit\"} 1\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Watchdog predicates (synthetic samples through the real evaluation path)
// ---------------------------------------------------------------------------

MonitorSample SampleAt(std::uint64_t at_ms) {
  MonitorSample s;
  s.at_ns = at_ms * 1000000ull;
  return s;
}

TEST(ObsWatchdogTest, SchedulerStallFlipsUnhealthyAndRecovers) {
  Watchdog::Options options;
  options.stall_samples = 2;
  Watchdog wd([] { return MonitorSample{}; }, options);
  int postmortems = 0;
  wd.set_postmortem_hook([&](const std::string& reason) {
    ++postmortems;
    EXPECT_NE(reason.find("scheduler_stall"), std::string::npos) << reason;
  });

  // Queue depth constant at 5, executed frozen: stalled after
  // stall_samples + 1 readings.
  for (int i = 0; i < 3; ++i) {
    MonitorSample s = SampleAt(100 * (i + 1));
    s.sched_pending = 5;
    s.executed = 10;
    wd.TickForTest(s);
  }
  EXPECT_EQ(wd.health(), HealthState::kUnhealthy);
  ASSERT_FALSE(wd.reasons().empty());
  EXPECT_NE(wd.reasons().front().find("scheduler_stall"), std::string::npos);
  EXPECT_EQ(wd.transitions(), 1u);
  EXPECT_EQ(postmortems, 1);
  EXPECT_EQ(wd.postmortems_triggered(), 1u);

  // The queue drains: healthy again, no further postmortems.
  MonitorSample s = SampleAt(400);
  s.sched_pending = 0;
  s.executed = 15;
  wd.TickForTest(s);
  EXPECT_EQ(wd.health(), HealthState::kHealthy);
  EXPECT_TRUE(wd.reasons().empty());
  EXPECT_EQ(postmortems, 1);
}

TEST(ObsWatchdogTest, DrainingQueueIsNotAStall) {
  Watchdog::Options options;
  options.stall_samples = 2;
  Watchdog wd([] { return MonitorSample{}; }, options);
  // Depth shrinks every tick — busy, not wedged.
  for (int i = 0; i < 4; ++i) {
    MonitorSample s = SampleAt(100 * (i + 1));
    s.sched_pending = static_cast<std::uint64_t>(10 - i);
    s.executed = 10;
    wd.TickForTest(s);
  }
  EXPECT_EQ(wd.health(), HealthState::kHealthy);
}

TEST(ObsWatchdogTest, LockPileupDegrades) {
  Watchdog::Options options;
  options.max_lock_waiters = 4;
  Watchdog wd([] { return MonitorSample{}; }, options);
  MonitorSample s = SampleAt(100);
  s.lock_waiters = 3;
  s.nested_waiters = 2;  // 5 > 4
  wd.TickForTest(s);
  EXPECT_EQ(wd.health(), HealthState::kDegraded);
  ASSERT_FALSE(wd.reasons().empty());
  EXPECT_NE(wd.reasons().front().find("lock_pileup"), std::string::npos);
}

TEST(ObsWatchdogTest, WalWedgedIsUnhealthy) {
  Watchdog wd([] { return MonitorSample{}; }, Watchdog::Options{});
  MonitorSample s = SampleAt(100);
  s.wal_wedged = true;
  wd.TickForTest(s);
  EXPECT_EQ(wd.health(), HealthState::kUnhealthy);
}

TEST(ObsWatchdogTest, BufferGrowthWithoutDetectionsDegrades) {
  Watchdog::Options options;
  options.buffer_growth_min = 10;
  Watchdog wd([] { return MonitorSample{}; }, options);
  MonitorSample s1 = SampleAt(100);
  s1.detector_buffered = 0;
  s1.detections = 7;
  wd.TickForTest(s1);
  MonitorSample s2 = SampleAt(200);
  s2.detector_buffered = 100;
  s2.detections = 7;
  wd.TickForTest(s2);
  EXPECT_EQ(wd.health(), HealthState::kDegraded);
  ASSERT_FALSE(wd.reasons().empty());
  EXPECT_NE(wd.reasons().front().find("detector_buffer_growth"),
            std::string::npos);

  // Same growth with detections moving is fine: someone consumes the events.
  Watchdog wd2([] { return MonitorSample{}; }, options);
  s1.detections = 1;
  s2.detections = 2;
  wd2.TickForTest(s1);
  wd2.TickForTest(s2);
  EXPECT_EQ(wd2.health(), HealthState::kHealthy);
}

TEST(ObsWatchdogTest, NetE2eP99BreachDegrades) {
  Watchdog::Options options;
  options.net_e2e_p99_degraded_ns = 1000000;  // 1ms SLO for the test
  options.window = 2;  // compare each tick against the previous one only
  Watchdog wd([] { return MonitorSample{}; }, options);

  // Baseline tick: the cumulative e2e histogram already holds some fast
  // deliveries — they must not count against the window.
  LatencyHistogram e2e;
  for (int i = 0; i < 100; ++i) e2e.Record(50000);  // 50us, well under SLO
  MonitorSample s1 = SampleAt(100);
  s1.net_e2e = e2e.TakeSnapshot();
  wd.TickForTest(s1);
  EXPECT_EQ(wd.health(), HealthState::kHealthy);

  // The window between ticks sees a latency spike: p99 of the delta
  // blows through the SLO even though the cumulative p99 barely moves.
  for (int i = 0; i < 10; ++i) e2e.Record(50000000);  // 50ms
  MonitorSample s2 = SampleAt(200);
  s2.net_e2e = e2e.TakeSnapshot();
  wd.TickForTest(s2);
  EXPECT_EQ(wd.health(), HealthState::kDegraded);
  ASSERT_FALSE(wd.reasons().empty());
  EXPECT_NE(wd.reasons().front().find("net_e2e_p99"), std::string::npos);

  // Spike passes, window is clean again: back to healthy.
  for (int i = 0; i < 100; ++i) e2e.Record(50000);
  MonitorSample s3 = SampleAt(300);
  s3.net_e2e = e2e.TakeSnapshot();
  wd.TickForTest(s3);
  EXPECT_EQ(wd.health(), HealthState::kHealthy);
}

TEST(ObsWatchdogTest, PostmortemsAreRateLimitedPerTransition) {
  Watchdog::Options options;
  options.postmortem_min_interval = std::chrono::milliseconds(1000);
  Watchdog wd([] { return MonitorSample{}; }, options);
  int postmortems = 0;
  wd.set_postmortem_hook([&](const std::string&) { ++postmortems; });

  auto wedge = [&](std::uint64_t at_ms, bool wedged) {
    MonitorSample s = SampleAt(at_ms);
    s.wal_wedged = wedged;
    wd.TickForTest(s);
  };
  wedge(100, true);   // transition 1: hook fires
  wedge(200, false);  // recover
  wedge(300, true);   // transition 2, 200ms after the last dump: suppressed
  wedge(400, false);  // recover
  wedge(1500, true);  // transition 3, 1400ms later: fires again
  EXPECT_EQ(wd.transitions(), 3u);
  EXPECT_EQ(postmortems, 2);
  EXPECT_EQ(wd.postmortems_triggered(), 2u);
}

TEST(ObsWatchdogTest, DeltaSnapshotSubtractsBucketwise) {
  LatencyHistogram h;
  h.Record(100);
  auto oldest = h.TakeSnapshot();
  h.Record(100);
  for (int i = 0; i < 9; ++i) h.Record(1000000);
  auto newest = h.TakeSnapshot();
  auto delta = Watchdog::DeltaSnapshot(newest, oldest);
  EXPECT_EQ(delta.count, 10u);
  EXPECT_EQ(delta.sum_ns, 9000100u);
  // The windowed p99 sees the new spike even though the cumulative p50
  // would still sit in the 100ns bucket.
  EXPECT_GT(delta.QuantileNs(0.99), 500000u);
}

TEST(ObsWatchdogTest, RatesComeFromTheRingWindow) {
  Watchdog wd([] { return MonitorSample{}; }, Watchdog::Options{});
  MonitorSample s1 = SampleAt(1000);
  s1.notifications = 0;
  s1.executed = 0;
  wd.TickForTest(s1);
  MonitorSample s2 = SampleAt(2000);  // exactly 1s later
  s2.notifications = 500;
  s2.executed = 50;
  wd.TickForTest(s2);
  const Watchdog::Rates rates = wd.rates();
  EXPECT_NEAR(rates.events_per_sec, 500.0, 1e-6);
  EXPECT_NEAR(rates.firings_per_sec, 50.0, 1e-6);
  EXPECT_NEAR(rates.window_sec, 1.0, 1e-6);
}

TEST(ObsWatchdogTest, SamplerThreadTicksAndStops) {
  Watchdog::Options options;
  options.interval = std::chrono::milliseconds(5);
  Watchdog wd([] { return MonitorSample{}; }, options);
  ASSERT_TRUE(wd.Start().ok());
  EXPECT_TRUE(wd.running());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (wd.ticks() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(wd.ticks(), 3u);
  wd.Stop();
  EXPECT_FALSE(wd.running());
}

// ---------------------------------------------------------------------------
// HTTP monitor server
// ---------------------------------------------------------------------------

/// Minimal HTTP/1.0 client: sends `request` to 127.0.0.1:port, returns the
/// raw response (status line + headers + body).
std::string HttpRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(int port, const std::string& path) {
  return HttpRequest(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

int StatusOf(const std::string& response) {
  // "HTTP/1.0 200 OK"
  if (response.size() < 12) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string BodyOf(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(ObsMonitorServerTest, ServesRoutesAndErrorCodes) {
  MonitorServer server;
  server.Route("/ping", [] {
    MonitorServer::Response r;
    r.body = "pong";
    return r;
  });
  server.Route("/boom", []() -> MonitorServer::Response {
    throw std::runtime_error("handler exploded");
  });
  ASSERT_TRUE(server.Start(MonitorServer::Options{}).ok());
  ASSERT_GT(server.port(), 0);

  auto ok = HttpGet(server.port(), "/ping");
  EXPECT_EQ(StatusOf(ok), 200);
  EXPECT_EQ(BodyOf(ok), "pong");
  // Query strings are stripped before routing.
  EXPECT_EQ(StatusOf(HttpGet(server.port(), "/ping?x=1")), 200);
  EXPECT_EQ(StatusOf(HttpGet(server.port(), "/nope")), 404);
  EXPECT_EQ(StatusOf(HttpRequest(server.port(),
                                 "POST /ping HTTP/1.1\r\nHost: t\r\n\r\n")),
            405);
  EXPECT_EQ(StatusOf(HttpGet(server.port(), "/boom")), 500);
  EXPECT_EQ(server.requests(), 3u);  // only routed requests count
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(ObsMonitorServerTest, RefusesTakenPort) {
  MonitorServer a;
  ASSERT_TRUE(a.Start(MonitorServer::Options{}).ok());
  MonitorServer b;
  MonitorServer::Options taken;
  taken.port = a.port();
  EXPECT_FALSE(b.Start(taken).ok());
  a.Stop();
}

// ---------------------------------------------------------------------------
// End-to-end: ActiveDatabase monitoring plane
// ---------------------------------------------------------------------------

TEST(ObsMonitorE2ETest, MetricsHealthzAndFriendsOverHttp) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  ASSERT_TRUE(db.detector()->DefineExplicit("audit_evt").ok());
  ASSERT_TRUE(db.rule_manager()
                  ->DefineRule("audit\"rule", "audit_evt", nullptr,
                               [](const rules::RuleContext&) {})
                  .ok());
  auto bound = db.StartMonitoring(0);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const int port = *bound;
  ASSERT_GT(port, 0);
  EXPECT_EQ(db.monitor_server()->port(), port);

  auto txn = db.Begin();
  ASSERT_TRUE(txn.ok());
  auto params = std::make_shared<detector::ParamList>();
  ASSERT_TRUE(db.RaiseEvent("audit_evt", params, *txn).ok());
  ASSERT_TRUE(db.Commit(*txn).ok());

  const auto metrics = HttpGet(port, "/metrics");
  EXPECT_EQ(StatusOf(metrics), 200);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string body = BodyOf(metrics);
  EXPECT_NE(body.find("# TYPE sentinel_rules_executed_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE sentinel_scheduler_pending gauge"),
            std::string::npos);
  EXPECT_NE(body.find("sentinel_detector_notifications_total"),
            std::string::npos);
  // Rule label escaped per the exposition spec.
  EXPECT_NE(body.find("sentinel_rule_fired_total{rule=\"audit\\\"rule\""),
            std::string::npos);
  EXPECT_NE(body.find("sentinel_rule_action_ns_bucket"), std::string::npos);
  EXPECT_NE(body.find("sentinel_health_state"), std::string::npos);

  const auto healthz = HttpGet(port, "/healthz");
  EXPECT_EQ(StatusOf(healthz), 200);
  EXPECT_NE(BodyOf(healthz).find("\"status\":\"healthy\""),
            std::string::npos);

  EXPECT_EQ(StatusOf(HttpGet(port, "/stats")), 200);
  EXPECT_NE(BodyOf(HttpGet(port, "/stats")).find("\"scheduler\""),
            std::string::npos);
  EXPECT_NE(BodyOf(HttpGet(port, "/graph")).find("digraph"),
            std::string::npos);
  EXPECT_EQ(StatusOf(HttpGet(port, "/trace")), 200);
  EXPECT_NE(BodyOf(HttpGet(port, "/postmortem")).find("\"reason\""),
            std::string::npos);
  EXPECT_EQ(StatusOf(HttpGet(port, "/nope")), 404);

  db.StopMonitoring();
  EXPECT_EQ(db.monitor_server(), nullptr);
  ASSERT_TRUE(db.Close().ok());
}

TEST(ObsMonitorE2ETest, StartMonitoringTwiceFailsCleanly) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  auto first = db.StartMonitoring(0);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(db.StartMonitoring(0).ok());
  db.StopMonitoring();
  // After a stop the plane can come back.
  EXPECT_TRUE(db.StartMonitoring(-1).ok());  // watchdog-only
  EXPECT_EQ(db.monitor_server(), nullptr);
  EXPECT_NE(db.watchdog(), nullptr);
  ASSERT_TRUE(db.Close().ok());
}

// Acceptance: a failpoint-induced scheduler stall (every rule execution
// delayed far beyond the watchdog window) flips /healthz to 503 with exactly
// one automatic postmortem; clearing the failpoint lets the queue drain and
// health returns to 200.
TEST(ObsMonitorE2ETest, FailpointStallFlips503WithOnePostmortem) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  ASSERT_TRUE(db.detector()->DefineExplicit("slow_evt").ok());
  rules::RuleManager::RuleOptions detached;
  detached.coupling = rules::CouplingMode::kDetached;
  ASSERT_TRUE(db.rule_manager()
                  ->DefineRule("slow_rule", "slow_evt", nullptr,
                               [](const rules::RuleContext&) {}, detached)
                  .ok());

  Watchdog::Options wd;
  wd.interval = std::chrono::milliseconds(10);
  wd.stall_samples = 3;
  wd.postmortem_min_interval = std::chrono::seconds(60);  // one dump max
  auto bound = db.StartMonitoring(0, wd);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const int port = *bound;

  // Every scheduler execution sleeps 400ms — detached firings pile up while
  // the watchdog samples every 10ms.
  ASSERT_TRUE(FailPointRegistry::Instance()
                  .Enable("scheduler.execute", "delay(ms=400)")
                  .ok());
  auto params = std::make_shared<detector::ParamList>();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        db.RaiseEvent("slow_evt", params, storage::kInvalidTxnId).ok());
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (db.watchdog()->health() != HealthState::kUnhealthy &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(db.watchdog()->health(), HealthState::kUnhealthy)
      << "watchdog never tripped";

  const auto unhealthy = HttpGet(port, "/healthz");
  EXPECT_EQ(StatusOf(unhealthy), 503);
  EXPECT_NE(BodyOf(unhealthy).find("scheduler_stall"), std::string::npos);
  // Exactly one automatic postmortem for the transition, despite the
  // predicate stays tripped across many watchdog ticks.
  EXPECT_EQ(db.watchdog()->postmortems_triggered(), 1u);

  // Clear the fault; the queue drains and health recovers.
  FailPointRegistry::Instance().DisableAll();
  db.scheduler()->WaitDetached();
  const auto recover_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (db.watchdog()->health() != HealthState::kHealthy &&
         std::chrono::steady_clock::now() < recover_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(db.watchdog()->health(), HealthState::kHealthy);
  EXPECT_EQ(StatusOf(HttpGet(port, "/healthz")), 200);
  EXPECT_EQ(db.watchdog()->postmortems_triggered(), 1u);
  ASSERT_TRUE(db.Close().ok());
}

// SENTINEL_MONITOR_PORT auto-start: Open wires the full plane from the
// environment, Close tears it down.
TEST(ObsMonitorE2ETest, EnvVarAutoStartsMonitoring) {
  ::setenv("SENTINEL_MONITOR_PORT", "0", 1);
  ::setenv("SENTINEL_WATCHDOG_MS", "20", 1);
  {
    ActiveDatabase db;
    ASSERT_TRUE(db.OpenInMemory().ok());
    ASSERT_NE(db.monitor_server(), nullptr);
    ASSERT_NE(db.watchdog(), nullptr);
    const int port = db.monitor_server()->port();
    ASSERT_GT(port, 0);
    EXPECT_EQ(StatusOf(HttpGet(port, "/metrics")), 200);
    ASSERT_TRUE(db.Close().ok());
    EXPECT_EQ(db.monitor_server(), nullptr);
  }
  ::unsetenv("SENTINEL_MONITOR_PORT");
  ::unsetenv("SENTINEL_WATCHDOG_MS");
}

}  // namespace
}  // namespace sentinel
