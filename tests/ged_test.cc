#include "ged/global_detector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "detector_test_util.h"

namespace sentinel::ged {
namespace {

using detector::EventModifier;
using detector::ParamContext;

class GedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(app1_.OpenInMemory().ok());
    ASSERT_TRUE(app2_.OpenInMemory().ok());
    ASSERT_TRUE(ged_.RegisterApplication("app1", &app1_).ok());
    ASSERT_TRUE(ged_.RegisterApplication("app2", &app2_).ok());
  }

  void Fire(core::ActiveDatabase* app, const std::string& method, int v) {
    auto params = std::make_shared<detector::ParamList>();
    params->Insert("v", oodb::Value::Int(v));
    app->NotifyMethod("Order", 1, EventModifier::kEnd, method, params, 1);
  }

  core::ActiveDatabase app1_, app2_;
  GlobalEventDetector ged_;
};

TEST_F(GedTest, GlobalPrimitiveMirrorsApplicationEvent) {
  ASSERT_TRUE(ged_.DefineGlobalPrimitive("g1", "app1", "Order",
                                         EventModifier::kEnd, "void submit()")
                  .ok());
  detector::RecordingSink sink;
  ASSERT_TRUE(ged_.Subscribe("g1", &sink, ParamContext::kRecent).ok());
  Fire(&app1_, "void submit()", 7);
  ged_.WaitQuiescent();
  ASSERT_EQ(sink.hits.size(), 1u);
  EXPECT_EQ(sink.hits[0].occurrence.Param("v")->AsInt(), 7);
}

TEST_F(GedTest, EventsAreScopedToTheirApplication) {
  ASSERT_TRUE(ged_.DefineGlobalPrimitive("g1", "app1", "Order",
                                         EventModifier::kEnd, "void submit()")
                  .ok());
  detector::RecordingSink sink;
  ASSERT_TRUE(ged_.Subscribe("g1", &sink, ParamContext::kRecent).ok());
  Fire(&app2_, "void submit()", 1);  // same class+method, other application
  ged_.WaitQuiescent();
  EXPECT_TRUE(sink.hits.empty());
}

TEST_F(GedTest, CrossApplicationSequence) {
  // Paper Fig. 2: composite events whose constituents come from different
  // applications (workflow: app1 submits, app2 approves).
  ASSERT_TRUE(ged_.DefineGlobalPrimitive("submitted", "app1", "Order",
                                         EventModifier::kEnd, "void submit()")
                  .ok());
  ASSERT_TRUE(ged_.DefineGlobalPrimitive("approved", "app2", "Order",
                                         EventModifier::kEnd, "void approve()")
                  .ok());
  auto submitted = ged_.graph()->Find("submitted");
  auto approved = ged_.graph()->Find("approved");
  ASSERT_TRUE(
      ged_.graph()->DefineSeq("submit_then_approve", *submitted, *approved).ok());
  detector::RecordingSink sink;
  ASSERT_TRUE(
      ged_.Subscribe("submit_then_approve", &sink, ParamContext::kRecent).ok());

  Fire(&app2_, "void approve()", 1);  // wrong order: no detection
  Fire(&app1_, "void submit()", 2);
  ged_.WaitQuiescent();
  EXPECT_TRUE(sink.hits.empty());
  Fire(&app2_, "void approve()", 3);
  ged_.WaitQuiescent();
  ASSERT_EQ(sink.hits.size(), 1u);
  EXPECT_EQ(sink.hits[0].occurrence.constituents.size(), 2u);
}

TEST_F(GedTest, DeliverToExecutesDetachedRuleInTargetApp) {
  ASSERT_TRUE(ged_.DefineGlobalPrimitive("submitted", "app1", "Order",
                                         EventModifier::kEnd, "void submit()")
                  .ok());
  // Target application defines an explicit event + a detached rule on it.
  ASSERT_TRUE(app2_.detector()->DefineExplicit("order_arrived").ok());
  std::atomic<int> fired{0};
  rules::RuleManager::RuleOptions options;
  options.coupling = rules::CouplingMode::kDetached;
  ASSERT_TRUE(app2_.rule_manager()
                  ->DefineRule("on_order", "order_arrived", nullptr,
                               [&](const rules::RuleContext& ctx) {
                                 if (ctx.Param("v").ok()) ++fired;
                               },
                               options)
                  .ok());
  ASSERT_TRUE(ged_.DeliverTo("submitted", "app2", "order_arrived").ok());
  EXPECT_TRUE(ged_.DeliverTo("submitted", "app2", "missing").IsNotFound());
  EXPECT_TRUE(ged_.DeliverTo("submitted", "nope", "order_arrived").IsNotFound());

  Fire(&app1_, "void submit()", 5);
  ged_.WaitQuiescent();
  app2_.scheduler()->WaitDetached();
  EXPECT_EQ(fired, 1);
}

TEST_F(GedTest, DuplicateApplicationRejected) {
  EXPECT_TRUE(ged_.RegisterApplication("app1", &app1_).IsAlreadyExists());
  EXPECT_TRUE(ged_.DefineGlobalPrimitive("g", "ghost", "C",
                                         EventModifier::kEnd, "void f()")
                  .status()
                  .IsNotFound());
}

TEST_F(GedTest, ForwardedCountTracksBusTraffic) {
  const std::uint64_t before = ged_.forwarded_count();
  Fire(&app1_, "void whatever()", 1);
  Fire(&app2_, "void whatever()", 2);
  ged_.WaitQuiescent();
  EXPECT_EQ(ged_.forwarded_count(), before + 2);
}

}  // namespace
}  // namespace sentinel::ged
