#include "ged/global_detector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "detector_test_util.h"

namespace sentinel::ged {
namespace {

using detector::EventModifier;
using detector::ParamContext;

class GedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(app1_.OpenInMemory().ok());
    ASSERT_TRUE(app2_.OpenInMemory().ok());
    ASSERT_TRUE(ged_.RegisterApplication("app1", &app1_).ok());
    ASSERT_TRUE(ged_.RegisterApplication("app2", &app2_).ok());
  }

  void Fire(core::ActiveDatabase* app, const std::string& method, int v) {
    auto params = std::make_shared<detector::ParamList>();
    params->Insert("v", oodb::Value::Int(v));
    app->NotifyMethod("Order", 1, EventModifier::kEnd, method, params, 1);
  }

  core::ActiveDatabase app1_, app2_;
  GlobalEventDetector ged_;
};

TEST_F(GedTest, GlobalPrimitiveMirrorsApplicationEvent) {
  ASSERT_TRUE(ged_.DefineGlobalPrimitive("g1", "app1", "Order",
                                         EventModifier::kEnd, "void submit()")
                  .ok());
  detector::RecordingSink sink;
  ASSERT_TRUE(ged_.Subscribe("g1", &sink, ParamContext::kRecent).ok());
  Fire(&app1_, "void submit()", 7);
  ged_.WaitQuiescent();
  ASSERT_EQ(sink.hits.size(), 1u);
  EXPECT_EQ(sink.hits[0].occurrence.Param("v")->AsInt(), 7);
}

TEST_F(GedTest, EventsAreScopedToTheirApplication) {
  ASSERT_TRUE(ged_.DefineGlobalPrimitive("g1", "app1", "Order",
                                         EventModifier::kEnd, "void submit()")
                  .ok());
  detector::RecordingSink sink;
  ASSERT_TRUE(ged_.Subscribe("g1", &sink, ParamContext::kRecent).ok());
  Fire(&app2_, "void submit()", 1);  // same class+method, other application
  ged_.WaitQuiescent();
  EXPECT_TRUE(sink.hits.empty());
}

TEST_F(GedTest, CrossApplicationSequence) {
  // Paper Fig. 2: composite events whose constituents come from different
  // applications (workflow: app1 submits, app2 approves).
  ASSERT_TRUE(ged_.DefineGlobalPrimitive("submitted", "app1", "Order",
                                         EventModifier::kEnd, "void submit()")
                  .ok());
  ASSERT_TRUE(ged_.DefineGlobalPrimitive("approved", "app2", "Order",
                                         EventModifier::kEnd, "void approve()")
                  .ok());
  auto submitted = ged_.graph()->Find("submitted");
  auto approved = ged_.graph()->Find("approved");
  ASSERT_TRUE(
      ged_.graph()->DefineSeq("submit_then_approve", *submitted, *approved).ok());
  detector::RecordingSink sink;
  ASSERT_TRUE(
      ged_.Subscribe("submit_then_approve", &sink, ParamContext::kRecent).ok());

  Fire(&app2_, "void approve()", 1);  // wrong order: no detection
  Fire(&app1_, "void submit()", 2);
  ged_.WaitQuiescent();
  EXPECT_TRUE(sink.hits.empty());
  Fire(&app2_, "void approve()", 3);
  ged_.WaitQuiescent();
  ASSERT_EQ(sink.hits.size(), 1u);
  EXPECT_EQ(sink.hits[0].occurrence.constituents.size(), 2u);
}

TEST_F(GedTest, DeliverToExecutesDetachedRuleInTargetApp) {
  ASSERT_TRUE(ged_.DefineGlobalPrimitive("submitted", "app1", "Order",
                                         EventModifier::kEnd, "void submit()")
                  .ok());
  // Target application defines an explicit event + a detached rule on it.
  ASSERT_TRUE(app2_.detector()->DefineExplicit("order_arrived").ok());
  std::atomic<int> fired{0};
  rules::RuleManager::RuleOptions options;
  options.coupling = rules::CouplingMode::kDetached;
  ASSERT_TRUE(app2_.rule_manager()
                  ->DefineRule("on_order", "order_arrived", nullptr,
                               [&](const rules::RuleContext& ctx) {
                                 if (ctx.Param("v").ok()) ++fired;
                               },
                               options)
                  .ok());
  ASSERT_TRUE(ged_.DeliverTo("submitted", "app2", "order_arrived").ok());
  EXPECT_TRUE(ged_.DeliverTo("submitted", "app2", "missing").IsNotFound());
  EXPECT_TRUE(ged_.DeliverTo("submitted", "nope", "order_arrived").IsNotFound());

  Fire(&app1_, "void submit()", 5);
  ged_.WaitQuiescent();
  app2_.scheduler()->WaitDetached();
  EXPECT_EQ(fired, 1);
}

TEST_F(GedTest, DuplicateApplicationRejected) {
  EXPECT_TRUE(ged_.RegisterApplication("app1", &app1_).IsAlreadyExists());
  EXPECT_TRUE(ged_.DefineGlobalPrimitive("g", "ghost", "C",
                                         EventModifier::kEnd, "void f()")
                  .status()
                  .IsNotFound());
}

TEST_F(GedTest, ForwardedCountTracksBusTraffic) {
  const std::uint64_t before = ged_.forwarded_count();
  Fire(&app1_, "void whatever()", 1);
  Fire(&app2_, "void whatever()", 2);
  ged_.WaitQuiescent();
  EXPECT_EQ(ged_.forwarded_count(), before + 2);
}

detector::PrimitiveOccurrence RemoteOccurrence(int v) {
  detector::PrimitiveOccurrence occ;
  occ.class_name = "Order";
  occ.oid = 1;
  occ.modifier = EventModifier::kEnd;
  occ.method_signature = "void submit()";
  occ.txn = 1;
  auto params = std::make_shared<detector::ParamList>();
  params->Insert("v", oodb::Value::Int(v));
  occ.params = params;
  return occ;
}

TEST_F(GedTest, RemoteApplicationLifecycle) {
  ASSERT_TRUE(ged_.RegisterRemoteApplication("remote1").ok());
  EXPECT_TRUE(ged_.RegisterRemoteApplication("remote1").IsAlreadyExists());
  EXPECT_TRUE(ged_.RegisterApplication("remote1", &app1_).IsAlreadyExists());
  EXPECT_TRUE(ged_.RegisterRemoteApplication("app1").IsAlreadyExists());
  EXPECT_TRUE(ged_.IsRegistered("remote1"));

  ASSERT_TRUE(ged_.DefineGlobalPrimitive("g_remote", "remote1", "Order",
                                         EventModifier::kEnd, "void submit()")
                  .ok());
  detector::RecordingSink sink;
  ASSERT_TRUE(ged_.Subscribe("g_remote", &sink, ParamContext::kRecent).ok());

  ASSERT_TRUE(ged_.InjectRemote("remote1", RemoteOccurrence(7)).ok());
  ged_.WaitQuiescent();
  ASSERT_EQ(sink.hits.size(), 1u);
  EXPECT_EQ(sink.hits[0].occurrence.Param("v")->AsInt(), 7);

  // Unregistration is liveness only: the name frees up and late events are
  // dropped, but the graph keeps the definition for the next session.
  ASSERT_TRUE(ged_.UnregisterApplication("remote1").ok());
  EXPECT_FALSE(ged_.IsRegistered("remote1"));
  const std::uint64_t dropped = ged_.dropped_count();
  EXPECT_TRUE(ged_.InjectRemote("remote1", RemoteOccurrence(8)).IsNotFound());
  EXPECT_EQ(ged_.dropped_count(), dropped + 1);
  ASSERT_TRUE(ged_.RegisterRemoteApplication("remote1").ok());
  EXPECT_TRUE(ged_.graph()->Find("g_remote").ok());
  ASSERT_TRUE(ged_.InjectRemote("remote1", RemoteOccurrence(9)).ok());
  ged_.WaitQuiescent();
  EXPECT_EQ(sink.hits.size(), 2u);

  // Local registrations have no removal path (their raw-observer hook is
  // permanent) and must refuse to unregister.
  EXPECT_FALSE(ged_.UnregisterApplication("app1").ok());
  EXPECT_TRUE(ged_.UnregisterApplication("never-registered").IsNotFound());
}

TEST_F(GedTest, ShutdownIsIdempotentAndRefusesLateArrivals) {
  ged_.Shutdown();
  ged_.Shutdown();  // second call must be a no-op, not a double-join
  EXPECT_TRUE(ged_.shut_down());

  EXPECT_TRUE(ged_.RegisterApplication("late", &app1_).IsRetryLater());
  EXPECT_TRUE(ged_.RegisterRemoteApplication("late").IsRetryLater());
  EXPECT_TRUE(ged_.InjectRemote("app1", RemoteOccurrence(1)).IsRetryLater());

  // Events from still-attached local apps are dropped, not queued forever.
  const std::uint64_t dropped = ged_.dropped_count();
  Fire(&app1_, "void submit()", 1);
  EXPECT_GE(ged_.dropped_count(), dropped + 1);
}

TEST_F(GedTest, ConcurrentRegistrationDuringShutdownNeverCorrupts) {
  // Satellite regression: RegisterApplication racing Shutdown used to be
  // able to observe a half-torn bus. Every racer must get a clean verdict —
  // OK (registered before the stop) or RetryLater (after) — and the GED
  // must come out shut down with no crash or deadlock.
  constexpr int kRacers = 8;
  std::vector<std::unique_ptr<core::ActiveDatabase>> apps(kRacers);
  for (auto& app : apps) {
    app = std::make_unique<core::ActiveDatabase>();
    ASSERT_TRUE(app->OpenInMemory().ok());
  }

  std::atomic<bool> go{false};
  std::atomic<int> ok_count{0};
  std::atomic<int> retry_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kRacers + 2);
  for (int i = 0; i < kRacers; ++i) {
    threads.emplace_back([&, i] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const std::string name = "racer" + std::to_string(i);
      const Status st = (i % 2 == 0)
                            ? ged_.RegisterApplication(name, apps[i].get())
                            : ged_.RegisterRemoteApplication(name);
      if (st.ok()) {
        ok_count.fetch_add(1);
      } else {
        EXPECT_TRUE(st.IsRetryLater()) << st.ToString();
        retry_count.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      ged_.Shutdown();
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  EXPECT_TRUE(ged_.shut_down());
  EXPECT_EQ(ok_count.load() + retry_count.load(), kRacers);
  // Registrations that won the race are still visible; losers left nothing
  // half-registered behind.
  for (int i = 0; i < kRacers; ++i) {
    const std::string name = "racer" + std::to_string(i);
    if (!ged_.IsRegistered(name)) {
      EXPECT_TRUE(ged_.RegisterRemoteApplication(name).IsRetryLater());
    }
  }
}

TEST_F(GedTest, WaitBusBelowReportsBacklogAndUnblocksOnShutdown) {
  // An idle bus satisfies any depth bound immediately.
  EXPECT_TRUE(ged_.WaitBusBelow(1, std::chrono::milliseconds(100)));

  // After Shutdown the wait must not hang; it reports the (empty) bus.
  ged_.Shutdown();
  EXPECT_TRUE(ged_.WaitBusBelow(1, std::chrono::milliseconds(100)));
}

}  // namespace
}  // namespace sentinel::ged
