// Continuous profiling plane: off-mode gating (no account accumulates unless
// profiling is on), exact per-rule attribution agreeing with the rule latency
// histograms, per-symbol event accounting under a concurrent notify storm,
// the try-then-wait contention table, folded-stack sampler output shape, and
// the /profile HTTP round-trip. Suite names start with Obs* so the TSan CI
// job's --gtest_filter picks them up.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/active_database.h"
#include "obs/profiler.h"
#include "obs/watchdog.h"
#include "rules/rule.h"
#include "rules/rule_manager.h"

namespace sentinel {
namespace {

using core::ActiveDatabase;
using detector::EventModifier;
using obs::HealthState;
using obs::MonitorSample;
using obs::Profiler;
using obs::Watchdog;
using rules::RuleContext;

// ---------------------------------------------------------------------------
// HTTP helpers (same minimal client as obs_monitor_test)
// ---------------------------------------------------------------------------

std::string HttpRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(int port, const std::string& path) {
  return HttpRequest(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

int StatusOf(const std::string& response) {
  if (response.size() < 12) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string BodyOf(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// ---------------------------------------------------------------------------
// Off-mode gating
// ---------------------------------------------------------------------------

TEST(ObsProfilerTest, OffByDefaultRecordsNothing) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  ASSERT_TRUE(
      db.DeclareEvent("e", "STOCK", EventModifier::kEnd, "void f()").ok());
  std::atomic<int> fired{0};
  ASSERT_TRUE(db.rule_manager()
                  ->DefineRule("r_off", "e", nullptr,
                               [&](const RuleContext&) { ++fired; })
                  .ok());

  auto txn = db.Begin();
  ASSERT_TRUE(txn.ok());
  auto params = std::make_shared<detector::ParamList>();
  for (int i = 0; i < 10; ++i) {
    db.NotifyMethod("STOCK", 1, EventModifier::kEnd, "void f()", params, *txn);
  }
  ASSERT_TRUE(db.Commit(*txn).ok());
  EXPECT_EQ(fired, 10);

  Profiler* prof = db.profiler();
  EXPECT_FALSE(prof->enabled());
  EXPECT_TRUE(prof->RuleSnapshots().empty());
  EXPECT_TRUE(prof->SymbolSnapshots().empty());
  EXPECT_EQ(prof->samples(), 0u);
  EXPECT_EQ(prof->TopCostRule(), "");
  EXPECT_NE(prof->ProfileJson().find("\"mode\":\"off\""), std::string::npos);
  ASSERT_TRUE(db.Close().ok());
}

// ---------------------------------------------------------------------------
// Exact attribution: profiler accounts agree with the rule histograms
// ---------------------------------------------------------------------------

TEST(ObsProfilerTest, RuleAttributionMatchesLatencyHistograms) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  ASSERT_TRUE(
      db.DeclareEvent("e", "STOCK", EventModifier::kEnd, "void f()").ok());
  std::atomic<int> fired{0};
  ASSERT_TRUE(db.rule_manager()
                  ->DefineRule(
                      "r_hot", "e", [](const RuleContext&) { return true; },
                      [&](const RuleContext&) { ++fired; })
                  .ok());

  db.profiler()->Start();

  constexpr int kFirings = 25;
  auto txn = db.Begin();
  ASSERT_TRUE(txn.ok());
  auto params = std::make_shared<detector::ParamList>();
  for (int i = 0; i < kFirings; ++i) {
    db.NotifyMethod("STOCK", 1, EventModifier::kEnd, "void f()", params, *txn);
  }
  ASSERT_TRUE(db.Commit(*txn).ok());
  ASSERT_EQ(fired, kFirings);

  auto rule = db.rule_manager()->Find("r_hot");
  ASSERT_TRUE(rule.ok());

  // System rules (flush-on-commit) are profiled too; pick ours by name.
  const auto rules = db.profiler()->RuleSnapshots();
  const auto it = std::find_if(rules.begin(), rules.end(),
                               [](const auto& r) { return r.name == "r_hot"; });
  ASSERT_NE(it, rules.end());
  const auto& snap = *it;

  // The scheduler reuses the same measured wall deltas for the profiler and
  // the latency histograms, so counts and wall totals agree exactly.
  const auto cond_hist = (*rule)->metrics().condition_ns.TakeSnapshot();
  const auto act_hist = (*rule)->metrics().action_ns.TakeSnapshot();
  const auto& cond =
      snap.seams[static_cast<int>(Profiler::RuleSeam::kCondition)];
  const auto& act = snap.seams[static_cast<int>(Profiler::RuleSeam::kAction)];
  EXPECT_EQ(cond.invocations, static_cast<std::uint64_t>(kFirings));
  EXPECT_EQ(act.invocations, static_cast<std::uint64_t>(kFirings));
  EXPECT_EQ(cond.invocations, cond_hist.count);
  EXPECT_EQ(act.invocations, act_hist.count);
  EXPECT_EQ(cond.wall_ns, cond_hist.sum_ns);
  EXPECT_EQ(act.wall_ns, act_hist.sum_ns);
  EXPECT_EQ((*rule)->fired_count(), static_cast<std::uint64_t>(kFirings));

  // The triggering class symbol is attributed to the rule and carries the
  // primitive-dispatch account.
  ASSERT_EQ(snap.symbols.size(), 1u);
  EXPECT_EQ(snap.symbols.front(), "STOCK");
  const auto symbols = db.profiler()->SymbolSnapshots();
  const auto sym_it =
      std::find_if(symbols.begin(), symbols.end(),
                   [](const auto& s) { return s.symbol == "STOCK"; });
  ASSERT_NE(sym_it, symbols.end());
  // Primitive-dispatch events are exact; rule-attributed cost also counts
  // the system flush rule's firing, so it is at least our firings.
  EXPECT_EQ(sym_it->events.invocations, static_cast<std::uint64_t>(kFirings));
  EXPECT_GE(sym_it->rules.invocations, static_cast<std::uint64_t>(kFirings));

  EXPECT_EQ(db.profiler()->TopCostRule(), "r_hot");
  ASSERT_TRUE(db.Close().ok());
}

// ---------------------------------------------------------------------------
// Concurrent notify storm: attribution totals stay exact (TSan-covered)
// ---------------------------------------------------------------------------

TEST(ObsProfilerTest, ConcurrentNotifyStormKeepsExactTotals) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  ASSERT_TRUE(
      db.DeclareEvent("ev_a", "ACCT", EventModifier::kEnd, "void f()").ok());
  ASSERT_TRUE(
      db.DeclareEvent("ev_b", "AUDIT", EventModifier::kEnd, "void g()").ok());
  std::atomic<int> fired_a{0};
  std::atomic<int> fired_b{0};
  ASSERT_TRUE(db.rule_manager()
                  ->DefineRule("r_a", "ev_a", nullptr,
                               [&](const RuleContext&) { ++fired_a; })
                  .ok());
  ASSERT_TRUE(db.rule_manager()
                  ->DefineRule("r_b", "ev_b", nullptr,
                               [&](const RuleContext&) { ++fired_b; })
                  .ok());

  db.profiler()->Start();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      auto txn = db.Begin();
      ASSERT_TRUE(txn.ok());
      auto params = std::make_shared<detector::ParamList>();
      for (int i = 0; i < kPerThread; ++i) {
        if ((t + i) % 2 == 0) {
          db.NotifyMethod("ACCT", t + 1, EventModifier::kEnd, "void f()",
                          params, *txn);
        } else {
          db.NotifyMethod("AUDIT", t + 1, EventModifier::kEnd, "void g()",
                          params, *txn);
        }
      }
      ASSERT_TRUE(db.Commit(*txn).ok());
    });
  }
  for (auto& th : threads) th.join();

  const int total = kThreads * kPerThread;
  ASSERT_EQ(fired_a + fired_b, total);

  // Sharded counters lose nothing under concurrency: per-rule invocation
  // counts sum to the storm size, and so do the per-symbol event accounts.
  std::uint64_t rule_actions = 0;
  for (const auto& rule : db.profiler()->RuleSnapshots()) {
    if (rule.name != "r_a" && rule.name != "r_b") continue;  // skip __sys_*
    rule_actions +=
        rule.seams[static_cast<int>(Profiler::RuleSeam::kAction)].invocations;
  }
  EXPECT_EQ(rule_actions, static_cast<std::uint64_t>(total));

  // Internal explicit flush events are accounted too (under "<explicit>");
  // the storm's own class symbols must balance exactly.
  std::uint64_t symbol_events = 0;
  for (const auto& sym : db.profiler()->SymbolSnapshots()) {
    if (sym.symbol == "ACCT" || sym.symbol == "AUDIT") {
      symbol_events += sym.events.invocations;
    }
  }
  EXPECT_EQ(symbol_events, static_cast<std::uint64_t>(total));
  ASSERT_TRUE(db.Close().ok());
}

// ---------------------------------------------------------------------------
// Contention profiling
// ---------------------------------------------------------------------------

TEST(ObsProfilerTest, LockContendedRecordsWaitsAndTopKOrders) {
  Profiler prof;
  prof.Start();

  auto* hot = prof.GetContentionSite("hot_site");
  auto* cold = prof.GetContentionSite("cold_site");
  auto* idle = prof.GetContentionSite("idle_site");
  std::mutex mu;

  // Uncontended acquisition: try_lock succeeds, no wait recorded.
  { auto lock = Profiler::LockContended(&prof, cold, mu); }

  // Contended acquisition: a holder sleeps while we block.
  std::atomic<bool> held{false};
  std::thread holder([&] {
    std::unique_lock<std::mutex> lock(mu);
    held.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  });
  while (!held.load()) std::this_thread::yield();
  { auto lock = Profiler::LockContended(&prof, hot, mu); }
  holder.join();

  const auto top = prof.TopContended(8);
  // idle_site never acquired: skipped entirely.
  for (const auto& site : top) EXPECT_NE(site.site, "idle_site");
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top.front().site, "hot_site");
  EXPECT_EQ(top.front().acquisitions, 1u);
  EXPECT_EQ(top.front().contended, 1u);
  EXPECT_GT(top.front().wait_ns, 0u);

  // Condition-wait sites report measured waits directly.
  Profiler::RecordSiteAcquire(idle);
  Profiler::RecordSiteWait(idle, 5);
  EXPECT_EQ(idle->acquisitions.value(), 1u);
  EXPECT_EQ(idle->wait_ns.value(), 5u);

  // Off-mode LockContended is a plain lock: nothing recorded.
  prof.Stop();
  { auto lock = Profiler::LockContended(&prof, cold, mu); }
  EXPECT_EQ(cold->acquisitions.value(), 1u);
}

TEST(ObsProfilerTest, ResetZeroesAccountsInPlace) {
  Profiler prof;
  prof.Start();
  auto* cell = prof.NodeAccount("and_node");
  cell->Record(10, 20);
  auto* site = prof.GetContentionSite("s");
  Profiler::RecordSiteAcquire(site);
  prof.Stop();
  prof.Reset();
  // Pointers stay valid; counters are zeroed in place.
  EXPECT_EQ(prof.NodeAccount("and_node"), cell);
  EXPECT_EQ(prof.GetContentionSite("s"), site);
  EXPECT_EQ(cell->Snap().invocations, 0u);
  EXPECT_EQ(cell->Snap().wall_ns, 0u);
  EXPECT_EQ(site->acquisitions.value(), 0u);
  EXPECT_TRUE(prof.TopContended(4).empty());
}

// ---------------------------------------------------------------------------
// Wall-clock sampling: folded-stack output shape
// ---------------------------------------------------------------------------

TEST(ObsProfilerTest, SamplerProducesFoldedStacks) {
  Profiler prof;
  prof.Start();
  auto* self = prof.RegisterThread("worker-0");
  const char* outer = prof.InternFrame("rule:r_hot");
  {
    Profiler::AnnotationScope a(&prof, self, outer);
    Profiler::AnnotationScope b(&prof, self, "action");
    // Hold the annotated stack until the ~1kHz sampler has seen it.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (prof.FoldedStacks().find("action") == std::string::npos &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  prof.UnregisterThread(self);
  prof.Stop();

  EXPECT_GT(prof.samples(), 0u);
  const std::string folded = prof.FoldedStacks();
  // Collapsed-stack lines: "thread;frame;frame count\n".
  const auto pos = folded.find("worker-0;rule:r_hot;action ");
  ASSERT_NE(pos, std::string::npos) << folded;
  const auto eol = folded.find('\n', pos);
  ASSERT_NE(eol, std::string::npos);
  const std::string count = folded.substr(
      folded.rfind(' ', eol) + 1, eol - folded.rfind(' ', eol) - 1);
  EXPECT_GT(std::stoull(count), 0u);
}

// ---------------------------------------------------------------------------
// Watchdog detail: the top-cost rule is named on degrade
// ---------------------------------------------------------------------------

TEST(ObsWatchdogDetailTest, TopCostRuleNamedOnDegradeOnly) {
  Watchdog::Options options;
  options.max_lock_waiters = 4;
  Watchdog wd([] { return MonitorSample{}; }, options);
  wd.set_detail_provider([] { return std::string("r_hot"); });

  MonitorSample healthy{};
  healthy.at_ns = 100;
  wd.TickForTest(healthy);
  EXPECT_EQ(wd.health(), HealthState::kHealthy);
  EXPECT_EQ(wd.HealthJson().find("top_cost_rule"), std::string::npos);

  MonitorSample pileup{};
  pileup.at_ns = 200;
  pileup.lock_waiters = 5;
  wd.TickForTest(pileup);
  EXPECT_EQ(wd.health(), HealthState::kDegraded);
  const std::string json = wd.HealthJson();
  EXPECT_NE(json.find("\"top_cost_rule\":\"r_hot\""), std::string::npos)
      << json;
}

// ---------------------------------------------------------------------------
// End-to-end: /profile over HTTP and sentinel_profile_* exposition
// ---------------------------------------------------------------------------

TEST(ObsProfileE2ETest, ProfileEndpointRoundTrip) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  ASSERT_TRUE(
      db.DeclareEvent("e", "STOCK", EventModifier::kEnd, "void f()").ok());
  std::atomic<int> fired{0};
  ASSERT_TRUE(db.rule_manager()
                  ->DefineRule("r_http", "e", nullptr,
                               [&](const RuleContext&) { ++fired; })
                  .ok());
  db.profiler()->Start();
  auto bound = db.StartMonitoring(0);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const int port = *bound;

  auto txn = db.Begin();
  ASSERT_TRUE(txn.ok());
  auto params = std::make_shared<detector::ParamList>();
  for (int i = 0; i < 5; ++i) {
    db.NotifyMethod("STOCK", 1, EventModifier::kEnd, "void f()", params, *txn);
  }
  ASSERT_TRUE(db.Commit(*txn).ok());
  ASSERT_EQ(fired, 5);

  const auto profile = HttpGet(port, "/profile");
  EXPECT_EQ(StatusOf(profile), 200);
  const std::string body = BodyOf(profile);
  EXPECT_NE(body.find("\"mode\":\"on\""), std::string::npos);
  EXPECT_NE(body.find("\"rules\""), std::string::npos);
  EXPECT_NE(body.find("\"r_http\""), std::string::npos);
  EXPECT_NE(body.find("\"symbols\""), std::string::npos);
  EXPECT_NE(body.find("\"STOCK\""), std::string::npos);
  EXPECT_NE(body.find("\"contention\""), std::string::npos);
  EXPECT_NE(body.find("\"seams\""), std::string::npos);

  const auto metrics = HttpGet(port, "/metrics");
  EXPECT_EQ(StatusOf(metrics), 200);
  const std::string exposition = BodyOf(metrics);
  EXPECT_NE(exposition.find("sentinel_profile_mode 1"), std::string::npos);
  EXPECT_NE(exposition.find("sentinel_profile_rule_wall_ns_total"),
            std::string::npos);
  EXPECT_NE(exposition.find("rule=\"r_http\""), std::string::npos);

  db.StopMonitoring();
  ASSERT_TRUE(db.Close().ok());
}

TEST(ObsProfileE2ETest, MetricsKeepProfileFamiliesWhenOff) {
  // The CI exposition check requires sentinel_profile_ families even when
  // profiling never ran: mode/duration/samples are always emitted.
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  auto bound = db.StartMonitoring(0);
  ASSERT_TRUE(bound.ok());
  const std::string exposition = BodyOf(HttpGet(*bound, "/metrics"));
  EXPECT_NE(exposition.find("sentinel_profile_mode 0"), std::string::npos);
  EXPECT_NE(exposition.find("sentinel_profile_samples_total"),
            std::string::npos);
  db.StopMonitoring();
  ASSERT_TRUE(db.Close().ok());
}

}  // namespace
}  // namespace sentinel
