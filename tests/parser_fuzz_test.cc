// Parser robustness: random token soup must produce a ParseError (or, by
// luck, a valid spec) — never a crash, hang, or uncontrolled exception.

#include <gtest/gtest.h>

#include <string>

#include "snoop/parser.h"

namespace sentinel::snoop {
namespace {

class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed * 2654435761u + 1) {}
  std::uint32_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state_ >> 33);
  }
  int Below(int n) { return static_cast<int>(Next() % static_cast<unsigned>(n)); }

 private:
  std::uint64_t state_;
};

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, RandomTokenSoupNeverCrashes) {
  const char* vocabulary[] = {
      "class",  "event", "rule",   "attr",  "begin", "end",   "NOT",
      "A",      "P",     "PLUS",   "then",  "REACTIVE",       "e1",
      "x",      "(",     ")",      "{",     "}",     "[",     "]",
      ",",      ";",     ":",      "=",     "^",     "|",     "*",
      "&&",     "100",   "\"C\"",  "\"void f()\"",   "RECENT",
      "DEFERRED", "NOW", "int",    "double",
  };
  constexpr int kVocab = sizeof(vocabulary) / sizeof(vocabulary[0]);
  Lcg rng(static_cast<std::uint64_t>(GetParam()));
  for (int round = 0; round < 200; ++round) {
    std::string source;
    const int len = rng.Below(40) + 1;
    for (int i = 0; i < len; ++i) {
      source += vocabulary[rng.Below(kVocab)];
      source += " ";
    }
    auto spec = Parser::Parse(source);  // must terminate without crashing
    if (!spec.ok()) {
      EXPECT_TRUE(spec.status().IsParseError()) << spec.status() << "\n"
                                                << source;
    }
  }
}

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 777);
  for (int round = 0; round < 100; ++round) {
    std::string source;
    const int len = rng.Below(120);
    for (int i = 0; i < len; ++i) {
      source.push_back(static_cast<char>(rng.Below(94) + 32));  // printable
    }
    (void)Parser::Parse(source);
    (void)Parser::ParseExpression(source);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1, 5));

}  // namespace
}  // namespace sentinel::snoop
