// Property-style sweeps over randomized event streams. A deterministic LCG
// drives the stream so failures reproduce from the seed in the test name.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "detector/local_detector.h"
#include "detector_test_util.h"

namespace sentinel::detector {
namespace {

/// Tiny deterministic PRNG (so the sweep is reproducible by seed).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed * 2654435761u + 1) {}
  std::uint32_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state_ >> 33);
  }
  int Below(int n) { return static_cast<int>(Next() % static_cast<unsigned>(n)); }

 private:
  std::uint64_t state_;
};

class RandomStreamProperty : public ::testing::TestWithParam<int> {};

// Invariant 1: for AND in CHRONICLE, every detection consumes one occurrence
// of each side, so #detections == min(#a, #b) for any interleaving.
TEST_P(RandomStreamProperty, AndChronicleCountsMatchMinRule) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()));
  LocalEventDetector det;
  auto a = det.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
  auto b = det.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
  (void)det.DefineAnd("e", *a, *b);
  RecordingSink sink;
  ASSERT_TRUE(det.Subscribe("e", &sink, ParamContext::kChronicle).ok());

  int count_a = 0, count_b = 0;
  for (int i = 0; i < 200; ++i) {
    if (rng.Below(2) == 0) {
      Fire(&det, "C", "void fa()", i);
      ++count_a;
    } else {
      Fire(&det, "C", "void fb()", i);
      ++count_b;
    }
  }
  EXPECT_EQ(sink.hits.size(),
            static_cast<std::size_t>(std::min(count_a, count_b)));
  // Leftovers still buffered == |#a - #b|.
  EXPECT_EQ(det.BufferedCount(),
            static_cast<std::size_t>(std::abs(count_a - count_b)));
}

// Invariant 2: every detection's constituents are in non-decreasing
// timestamp order for SEQ, and strictly earlier-initiator.
TEST_P(RandomStreamProperty, SeqDetectionsAreOrdered) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 17);
  LocalEventDetector det;
  auto a = det.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
  auto b = det.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
  (void)det.DefineSeq("e", *a, *b);
  RecordingSink sink;
  ASSERT_TRUE(det.Subscribe("e", &sink, ParamContext::kContinuous).ok());

  for (int i = 0; i < 200; ++i) {
    Fire(&det, "C", rng.Below(2) == 0 ? "void fa()" : "void fb()", i);
  }
  for (const auto& hit : sink.hits) {
    ASSERT_EQ(hit.occurrence.constituents.size(), 2u);
    EXPECT_LT(hit.occurrence.constituents[0]->at,
              hit.occurrence.constituents[1]->at);
    EXPECT_EQ(hit.occurrence.constituents[0]->event_name, "a");
    EXPECT_EQ(hit.occurrence.constituents[1]->event_name, "b");
    EXPECT_EQ(hit.occurrence.t_start, hit.occurrence.constituents[0]->at);
    EXPECT_EQ(hit.occurrence.t_end, hit.occurrence.constituents[1]->at);
  }
}

// Invariant 3: FlushAll leaves zero buffered occurrences and detection
// resumes cleanly, regardless of stream prefix.
TEST_P(RandomStreamProperty, FlushAllAlwaysResets) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 99);
  LocalEventDetector det;
  auto a = det.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
  auto b = det.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
  auto c = det.DefinePrimitive("c", "C", EventModifier::kEnd, "void fc()");
  auto and_node = det.DefineAnd("x", *a, *b);
  (void)det.DefineAperiodicStar("y", *and_node, *c, *b);
  RecordingSink sink;
  ASSERT_TRUE(det.Subscribe("y", &sink, ParamContext::kCumulative).ok());
  ASSERT_TRUE(det.Subscribe("x", &sink, ParamContext::kRecent).ok());

  const char* methods[] = {"void fa()", "void fb()", "void fc()"};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < rng.Below(30) + 1; ++i) {
      Fire(&det, "C", methods[rng.Below(3)], i);
    }
    det.FlushAll();
    ASSERT_EQ(det.BufferedCount(), 0u) << "round " << round;
  }
  // Detection still works after all the flushing.
  sink.Clear();
  Fire(&det, "C", "void fa()", 1);
  Fire(&det, "C", "void fb()", 2);
  EXPECT_EQ(sink.CountIn(ParamContext::kRecent), 1u);
}

// Invariant 4: per-transaction flush removes exactly the flushed
// transaction's occurrences.
TEST_P(RandomStreamProperty, FlushTxnIsExact) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 31337);
  LocalEventDetector det;
  auto a = det.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
  auto b = det.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
  (void)det.DefineSeq("e", *a, *b);
  RecordingSink sink;
  ASSERT_TRUE(det.Subscribe("e", &sink, ParamContext::kContinuous).ok());

  int txn1_initiators = 0, txn2_initiators = 0;
  for (int i = 0; i < 60; ++i) {
    TxnId txn = 1 + rng.Below(2);
    Fire(&det, "C", "void fa()", i, txn);
    if (txn == 1) {
      ++txn1_initiators;
    } else {
      ++txn2_initiators;
    }
  }
  EXPECT_EQ(det.BufferedCount(),
            static_cast<std::size_t>(txn1_initiators + txn2_initiators));
  det.FlushTxn(1);
  EXPECT_EQ(det.BufferedCount(), static_cast<std::size_t>(txn2_initiators));
  // A terminator fires once per surviving initiator (CONTINUOUS).
  Fire(&det, "C", "void fb()", 999, 2);
  EXPECT_EQ(sink.hits.size(), static_cast<std::size_t>(txn2_initiators));
}

// Invariant 5: online detection and batch replay of the identical stream
// produce the same number of detections in every context.
TEST_P(RandomStreamProperty, OnlineEqualsBatchAcrossContexts) {
  for (int c = 0; c < kNumContexts; ++c) {
    const auto context = static_cast<ParamContext>(c);
    Lcg rng(static_cast<std::uint64_t>(GetParam()) * 7 + c);

    std::vector<PrimitiveOccurrence> stream;
    LocalEventDetector online;
    auto a = online.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
    auto b = online.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
    (void)online.DefineAnd("e", *a, *b);
    RecordingSink online_sink;
    ASSERT_TRUE(online.Subscribe("e", &online_sink, context).ok());
    online.AddRawObserver([&stream](const PrimitiveOccurrence& occ) {
      stream.push_back(occ);
    });
    for (int i = 0; i < 100; ++i) {
      Fire(&online, "C", rng.Below(2) == 0 ? "void fa()" : "void fb()", i);
    }

    LocalEventDetector batch;
    auto a2 = batch.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
    auto b2 = batch.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
    (void)batch.DefineAnd("e", *a2, *b2);
    RecordingSink batch_sink;
    ASSERT_TRUE(batch.Subscribe("e", &batch_sink, context).ok());
    for (const auto& occ : stream) batch.Inject(occ);

    EXPECT_EQ(online_sink.hits.size(), batch_sink.hits.size())
        << ParamContextToString(context);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStreamProperty,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace sentinel::detector
