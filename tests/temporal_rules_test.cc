// Temporal events driving rules through the full active stack: PLUS-based
// timeout rules, periodic heartbeat rules, and their interaction with
// transactions and coupling modes.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/active_database.h"

namespace sentinel::core {
namespace {

using detector::EventModifier;
using rules::RuleContext;

class TemporalRulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.OpenInMemory().ok());
    ASSERT_TRUE(db_.DeclareEvent("request", "Server", EventModifier::kEnd,
                                 "void request(int id)")
                    .ok());
    ASSERT_TRUE(db_.DeclareEvent("response", "Server", EventModifier::kEnd,
                                 "void respond(int id)")
                    .ok());
  }

  void Request(int id, storage::TxnId txn) {
    auto params = std::make_shared<detector::ParamList>();
    params->Insert("id", oodb::Value::Int(id));
    db_.NotifyMethod("Server", 1, EventModifier::kEnd, "void request(int id)",
                     params, txn);
  }
  void Respond(int id, storage::TxnId txn) {
    auto params = std::make_shared<detector::ParamList>();
    params->Insert("id", oodb::Value::Int(id));
    db_.NotifyMethod("Server", 1, EventModifier::kEnd, "void respond(int id)",
                     params, txn);
  }

  ActiveDatabase db_;
};

TEST_F(TemporalRulesTest, TimeoutRuleFiresWhenNoResponse) {
  // NOT(response)[request, PLUS(request, 100)]: a request with no response
  // within 100ms of detector time.
  auto det = db_.detector();
  auto request = det->Find("request");
  auto response = det->Find("response");
  auto deadline = det->DefinePlus("deadline", *request, 100);
  ASSERT_TRUE(deadline.ok());
  ASSERT_TRUE(det->DefineNot("timeout", *request, *response, *deadline).ok());

  std::atomic<int> timeouts{0};
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("on_timeout", "timeout", nullptr,
                               [&](const RuleContext&) { ++timeouts; })
                  .ok());
  auto txn = db_.Begin();
  db_.AdvanceTime(0);

  Request(1, *txn);
  Respond(1, *txn);       // answered in time
  db_.AdvanceTime(150);   // deadline for request 1 passes silently
  EXPECT_EQ(timeouts, 0);

  Request(2, *txn);       // never answered
  db_.AdvanceTime(300);
  EXPECT_EQ(timeouts, 1);
  ASSERT_TRUE(db_.Commit(*txn).ok());
}

TEST_F(TemporalRulesTest, PeriodicRuleFiresPerTick) {
  auto det = db_.detector();
  auto request = det->Find("request");
  auto response = det->Find("response");
  ASSERT_TRUE(det->DefinePeriodic("heartbeat", *request, 50, *response).ok());
  std::atomic<int> beats{0};
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("on_beat", "heartbeat", nullptr,
                               [&](const RuleContext&) { ++beats; })
                  .ok());
  auto txn = db_.Begin();
  db_.AdvanceTime(0);
  Request(1, *txn);
  db_.AdvanceTime(175);  // ticks at 50, 100, 150
  EXPECT_EQ(beats, 3);
  Respond(1, *txn);      // closes the schedule
  db_.AdvanceTime(500);
  EXPECT_EQ(beats, 3);
  ASSERT_TRUE(db_.Commit(*txn).ok());
}

TEST_F(TemporalRulesTest, CommitFlushCancelsPendingTimers) {
  auto det = db_.detector();
  auto request = det->Find("request");
  ASSERT_TRUE(det->DefinePlus("later", *request, 100).ok());
  std::atomic<int> fired{0};
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("on_later", "later", nullptr,
                               [&](const RuleContext&) { ++fired; })
                  .ok());
  auto txn = db_.Begin();
  db_.AdvanceTime(0);
  Request(1, *txn);
  ASSERT_TRUE(db_.Commit(*txn).ok());  // flush rule drops the pending timer
  db_.AdvanceTime(1000);
  EXPECT_EQ(fired, 0);

  // With the flush rule disabled, the timer survives the commit.
  ASSERT_TRUE(db_.rule_manager()
                  ->DisableRule(ActiveDatabase::kFlushOnCommitRule)
                  .ok());
  auto txn2 = db_.Begin();
  Request(2, *txn2);
  ASSERT_TRUE(db_.Commit(*txn2).ok());
  db_.AdvanceTime(2000);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace sentinel::core
