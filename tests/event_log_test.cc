#include "detector/event_log.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "detector/local_detector.h"
#include "detector_test_util.h"

namespace sentinel::detector {
namespace {

class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("sentinel_evlog_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".evlog"))
                .string();
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

void DefineSeqGraph(LocalEventDetector* det) {
  auto a = det->DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
  auto b = det->DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(det->DefineSeq("a_then_b", *a, *b).ok());
}

TEST_F(EventLogTest, RecordsAttachedDetectorEvents) {
  LocalEventDetector det;
  EventLog log;
  log.AttachTo(&det);
  DefineSeqGraph(&det);
  RecordingSink sink;
  ASSERT_TRUE(det.Subscribe("a_then_b", &sink, ParamContext::kRecent).ok());
  Fire(&det, "C", "void fa()", 1);
  Fire(&det, "C", "void fb()", 2);
  EXPECT_EQ(log.size(), 2u);
}

TEST_F(EventLogTest, BatchReplayMatchesOnlineDetection) {
  // Online application: events recorded while detected live.
  EventLog log;
  std::size_t online_detections = 0;
  {
    LocalEventDetector online;
    log.AttachTo(&online);
    DefineSeqGraph(&online);
    RecordingSink sink;
    ASSERT_TRUE(
        online.Subscribe("a_then_b", &sink, ParamContext::kChronicle).ok());
    Fire(&online, "C", "void fa()", 1);
    Fire(&online, "C", "void fb()", 2);
    Fire(&online, "C", "void fa()", 3);
    Fire(&online, "C", "void fb()", 4);
    Fire(&online, "C", "void fb()", 5);  // unmatched
    online_detections = sink.hits.size();
  }
  EXPECT_EQ(online_detections, 2u);

  // Batch: replay the log against a fresh detector (paper §2.1).
  LocalEventDetector batch;
  DefineSeqGraph(&batch);
  RecordingSink sink;
  ASSERT_TRUE(batch.Subscribe("a_then_b", &sink, ParamContext::kChronicle).ok());
  ASSERT_TRUE(log.Replay(&batch).ok());
  EXPECT_EQ(sink.hits.size(), online_detections);
}

TEST_F(EventLogTest, FileBackedLogSurvivesReload) {
  {
    LocalEventDetector det;
    EventLog log;
    ASSERT_TRUE(log.OpenFile(path_).ok());
    log.AttachTo(&det);
    DefineSeqGraph(&det);
    RecordingSink sink;  // keep the graph active so events route
    ASSERT_TRUE(det.Subscribe("a_then_b", &sink, ParamContext::kRecent).ok());
    Fire(&det, "C", "void fa()", 42);
    Fire(&det, "C", "void fb()", 43);
    ASSERT_TRUE(log.Close().ok());
  }
  // New process: load from the file and replay.
  EventLog reloaded;
  ASSERT_TRUE(reloaded.OpenFile(path_).ok());
  auto occurrences = reloaded.Load();
  ASSERT_TRUE(occurrences.ok());
  ASSERT_EQ(occurrences->size(), 2u);
  EXPECT_EQ((*occurrences)[0].method_signature, "void fa()");
  EXPECT_EQ((*occurrences)[0].params->Get("v")->AsInt(), 42);

  LocalEventDetector det;
  DefineSeqGraph(&det);
  RecordingSink sink;
  ASSERT_TRUE(det.Subscribe("a_then_b", &sink, ParamContext::kRecent).ok());
  ASSERT_TRUE(reloaded.Replay(&det).ok());
  EXPECT_EQ(sink.hits.size(), 1u);
  ASSERT_TRUE(reloaded.Close().ok());
}

TEST_F(EventLogTest, SerializationRoundTripsAllFields) {
  PrimitiveOccurrence occ;
  occ.event_name = "e";
  occ.class_name = "Klass";
  occ.oid = 99;
  occ.modifier = EventModifier::kBegin;
  occ.method_signature = "void m(int a, float b)";
  occ.at = 12345;
  occ.at_ms = 67890;
  occ.txn = 11;
  auto params = std::make_shared<ParamList>();
  params->Insert("a", oodb::Value::Int(-5));
  params->Insert("b", oodb::Value::Double(2.5));
  params->Insert("s", oodb::Value::String("text"));
  params->Insert("o", oodb::Value::OfOid(7));
  params->Insert("flag", oodb::Value::Bool(true));
  params->Insert("nothing", oodb::Value::Null());
  occ.params = params;

  BytesWriter writer;
  EventLog::Serialize(occ, &writer);
  BytesReader reader(writer.data());
  auto back = EventLog::Deserialize(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->event_name, "e");
  EXPECT_EQ(back->class_name, "Klass");
  EXPECT_EQ(back->oid, 99u);
  EXPECT_EQ(back->modifier, EventModifier::kBegin);
  EXPECT_EQ(back->at, 12345u);
  EXPECT_EQ(back->at_ms, 67890u);
  EXPECT_EQ(back->txn, 11u);
  EXPECT_EQ(back->params->Get("a")->AsInt(), -5);
  EXPECT_DOUBLE_EQ(back->params->Get("b")->AsDouble(), 2.5);
  EXPECT_EQ(back->params->Get("s")->AsString(), "text");
  EXPECT_EQ(back->params->Get("o")->AsOid(), 7u);
  EXPECT_TRUE(back->params->Get("flag")->AsBool());
  EXPECT_TRUE(back->params->Get("nothing")->is_null());
  EXPECT_TRUE(reader.AtEnd());
}

}  // namespace
}  // namespace sentinel::detector
