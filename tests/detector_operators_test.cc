#include <gtest/gtest.h>

#include "detector/local_detector.h"
#include "detector_test_util.h"

namespace sentinel::detector {
namespace {

/// Fixture providing three primitive events a, b, c on distinct methods.
class OperatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = *det_.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
    b_ = *det_.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
    c_ = *det_.DefinePrimitive("c", "C", EventModifier::kEnd, "void fc()");
  }

  void FireA(int v = 0, TxnId txn = 1) { Fire(&det_, "C", "void fa()", v, txn); }
  void FireB(int v = 0, TxnId txn = 1) { Fire(&det_, "C", "void fb()", v, txn); }
  void FireC(int v = 0, TxnId txn = 1) { Fire(&det_, "C", "void fc()", v, txn); }

  LocalEventDetector det_;
  EventNode* a_ = nullptr;
  EventNode* b_ = nullptr;
  EventNode* c_ = nullptr;
  RecordingSink sink_;
};

// ---- OR ----------------------------------------------------------------------

TEST_F(OperatorTest, OrFiresOnEitherChild) {
  ASSERT_TRUE(det_.DefineOr("a_or_b", a_, b_).ok());
  ASSERT_TRUE(det_.Subscribe("a_or_b", &sink_, ParamContext::kRecent).ok());
  FireA(1);
  FireB(2);
  ASSERT_EQ(sink_.hits.size(), 2u);
  EXPECT_EQ(sink_.hits[0].occurrence.constituents[0]->event_name, "a");
  EXPECT_EQ(sink_.hits[1].occurrence.constituents[0]->event_name, "b");
}

// ---- AND (paper's ^) ------------------------------------------------------------

TEST_F(OperatorTest, AndRequiresBothAnyOrder) {
  ASSERT_TRUE(det_.DefineAnd("a_and_b", a_, b_).ok());
  ASSERT_TRUE(det_.Subscribe("a_and_b", &sink_, ParamContext::kRecent).ok());
  FireB();
  EXPECT_TRUE(sink_.hits.empty());
  FireA();
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.constituents.size(), 2u);
}

TEST_F(OperatorTest, AndRecentPartnerNotConsumed) {
  ASSERT_TRUE(det_.DefineAnd("a_and_b", a_, b_).ok());
  ASSERT_TRUE(det_.Subscribe("a_and_b", &sink_, ParamContext::kRecent).ok());
  FireA(1);
  FireB(2);  // detects (a1, b2)
  FireB(3);  // recent: a1 still present -> detects (a1, b3)
  EXPECT_EQ(sink_.hits.size(), 2u);
}

TEST_F(OperatorTest, AndRecentUsesMostRecent) {
  ASSERT_TRUE(det_.DefineAnd("a_and_b", a_, b_).ok());
  ASSERT_TRUE(det_.Subscribe("a_and_b", &sink_, ParamContext::kRecent).ok());
  FireA(1);
  FireA(2);  // replaces a=1
  FireB(9);
  ASSERT_EQ(sink_.hits.size(), 1u);
  auto a_parts = sink_.hits[0].occurrence.Of("a");
  ASSERT_EQ(a_parts.size(), 1u);
  EXPECT_EQ(a_parts[0]->params->Get("v")->AsInt(), 2);
}

TEST_F(OperatorTest, AndChronicleFifoAndConsuming) {
  ASSERT_TRUE(det_.DefineAnd("a_and_b", a_, b_).ok());
  ASSERT_TRUE(det_.Subscribe("a_and_b", &sink_, ParamContext::kChronicle).ok());
  FireA(1);
  FireA(2);
  FireB(10);  // pairs with a=1
  FireB(11);  // pairs with a=2
  FireB(12);  // no partner left
  ASSERT_EQ(sink_.hits.size(), 2u);
  EXPECT_EQ(sink_.hits[0].occurrence.Of("a")[0]->params->Get("v")->AsInt(), 1);
  EXPECT_EQ(sink_.hits[1].occurrence.Of("a")[0]->params->Get("v")->AsInt(), 2);
}

TEST_F(OperatorTest, AndContinuousTerminatorPairsWithAllOpen) {
  ASSERT_TRUE(det_.DefineAnd("a_and_b", a_, b_).ok());
  ASSERT_TRUE(
      det_.Subscribe("a_and_b", &sink_, ParamContext::kContinuous).ok());
  FireA(1);
  FireA(2);
  FireA(3);
  FireB(10);  // pairs with each buffered a, consuming them
  EXPECT_EQ(sink_.hits.size(), 3u);
  sink_.Clear();
  FireB(11);  // nothing left
  EXPECT_TRUE(sink_.hits.empty());
}

TEST_F(OperatorTest, AndCumulativeOneDetectionWithEverything) {
  ASSERT_TRUE(det_.DefineAnd("a_and_b", a_, b_).ok());
  ASSERT_TRUE(
      det_.Subscribe("a_and_b", &sink_, ParamContext::kCumulative).ok());
  FireA(1);
  FireA(2);
  FireB(10);
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Of("a").size(), 2u);
  EXPECT_EQ(sink_.hits[0].occurrence.Of("b").size(), 1u);
  sink_.Clear();
  FireB(11);  // accumulation was flushed by the detection
  EXPECT_TRUE(sink_.hits.empty());
}

// ---- SEQ ---------------------------------------------------------------------

TEST_F(OperatorTest, SeqRequiresOrder) {
  ASSERT_TRUE(det_.DefineSeq("a_then_b", a_, b_).ok());
  ASSERT_TRUE(det_.Subscribe("a_then_b", &sink_, ParamContext::kRecent).ok());
  FireB();  // b before a: no detection
  FireA();
  EXPECT_TRUE(sink_.hits.empty());
  FireB();  // now a precedes b
  ASSERT_EQ(sink_.hits.size(), 1u);
  const Occurrence& occ = sink_.hits[0].occurrence;
  EXPECT_LT(occ.constituents[0]->at, occ.constituents[1]->at);
}

TEST_F(OperatorTest, SeqChronicleConsumesInitiator) {
  ASSERT_TRUE(det_.DefineSeq("a_then_b", a_, b_).ok());
  ASSERT_TRUE(
      det_.Subscribe("a_then_b", &sink_, ParamContext::kChronicle).ok());
  FireA(1);
  FireB(10);
  FireB(11);  // initiator consumed: no second detection
  EXPECT_EQ(sink_.hits.size(), 1u);
}

TEST_F(OperatorTest, SeqRecentKeepsInitiator) {
  ASSERT_TRUE(det_.DefineSeq("a_then_b", a_, b_).ok());
  ASSERT_TRUE(det_.Subscribe("a_then_b", &sink_, ParamContext::kRecent).ok());
  FireA(1);
  FireB(10);
  FireB(11);
  EXPECT_EQ(sink_.hits.size(), 2u);
}

TEST_F(OperatorTest, SeqContinuousFiresPerInitiator) {
  ASSERT_TRUE(det_.DefineSeq("a_then_b", a_, b_).ok());
  ASSERT_TRUE(
      det_.Subscribe("a_then_b", &sink_, ParamContext::kContinuous).ok());
  FireA(1);
  FireA(2);
  FireB(10);
  EXPECT_EQ(sink_.hits.size(), 2u);
}

TEST_F(OperatorTest, SeqCumulativeGroupsInitiators) {
  ASSERT_TRUE(det_.DefineSeq("a_then_b", a_, b_).ok());
  ASSERT_TRUE(
      det_.Subscribe("a_then_b", &sink_, ParamContext::kCumulative).ok());
  FireA(1);
  FireA(2);
  FireB(10);
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Of("a").size(), 2u);
}

// ---- NOT ---------------------------------------------------------------------

TEST_F(OperatorTest, NotFiresWithoutCanceller) {
  ASSERT_TRUE(det_.DefineNot("guarded", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("guarded", &sink_, ParamContext::kRecent).ok());
  FireA();
  FireC();
  EXPECT_EQ(sink_.hits.size(), 1u);
}

TEST_F(OperatorTest, NotCancelledByMiddleEvent) {
  ASSERT_TRUE(det_.DefineNot("guarded", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("guarded", &sink_, ParamContext::kRecent).ok());
  FireA();
  FireB();  // cancels
  FireC();
  EXPECT_TRUE(sink_.hits.empty());
  // A fresh initiator after the canceller still works.
  FireA();
  FireC();
  EXPECT_EQ(sink_.hits.size(), 1u);
}

// ---- A (aperiodic) -------------------------------------------------------------

TEST_F(OperatorTest, AperiodicSignalsEachMiddleInWindow) {
  ASSERT_TRUE(det_.DefineAperiodic("win", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("win", &sink_, ParamContext::kRecent).ok());
  FireB();  // outside window: ignored
  EXPECT_TRUE(sink_.hits.empty());
  FireA();  // open
  FireB(1);
  FireB(2);
  EXPECT_EQ(sink_.hits.size(), 2u);
  FireC();  // close
  FireB(3);
  EXPECT_EQ(sink_.hits.size(), 2u);
}

TEST_F(OperatorTest, AperiodicContinuousFiresPerOpenWindow) {
  ASSERT_TRUE(det_.DefineAperiodic("win", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("win", &sink_, ParamContext::kContinuous).ok());
  FireA(1);
  FireA(2);
  FireB(9);
  EXPECT_EQ(sink_.hits.size(), 2u);
}

// ---- A* (cumulative aperiodic; DEFERRED rewrite target) --------------------------

TEST_F(OperatorTest, AperiodicStarFiresOnceAtCloseWithAccumulation) {
  ASSERT_TRUE(det_.DefineAperiodicStar("acc", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("acc", &sink_, ParamContext::kRecent).ok());
  FireA();
  FireB(1);
  FireB(2);
  FireB(3);
  EXPECT_TRUE(sink_.hits.empty());  // nothing until the window closes
  FireC();
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Of("b").size(), 3u);
}

TEST_F(OperatorTest, AperiodicStarSilentWhenNothingAccumulated) {
  ASSERT_TRUE(det_.DefineAperiodicStar("acc", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("acc", &sink_, ParamContext::kRecent).ok());
  FireA();
  FireC();  // no b occurred: deferred rules must not fire
  EXPECT_TRUE(sink_.hits.empty());
}

TEST_F(OperatorTest, AperiodicStarWindowResets) {
  ASSERT_TRUE(det_.DefineAperiodicStar("acc", a_, b_, c_).ok());
  ASSERT_TRUE(det_.Subscribe("acc", &sink_, ParamContext::kRecent).ok());
  FireA();
  FireB(1);
  FireC();
  ASSERT_EQ(sink_.hits.size(), 1u);
  // After closing, a new cycle accumulates independently.
  FireA();
  FireB(2);
  FireB(3);
  FireC();
  ASSERT_EQ(sink_.hits.size(), 2u);
  EXPECT_EQ(sink_.hits[1].occurrence.Of("b").size(), 2u);
}

// ---- PLUS / P / P* (temporal) -----------------------------------------------------

TEST_F(OperatorTest, PlusFiresAfterDelta) {
  ASSERT_TRUE(det_.DefinePlus("a_plus_100", a_, 100).ok());
  ASSERT_TRUE(
      det_.Subscribe("a_plus_100", &sink_, ParamContext::kRecent).ok());
  det_.AdvanceTime(1000);
  FireA(7);
  det_.AdvanceTime(1099);
  EXPECT_TRUE(sink_.hits.empty());
  det_.AdvanceTime(1100);
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.at_ms, 1100u);
  EXPECT_EQ(sink_.hits[0].occurrence.Param("v")->AsInt(), 7);
}

TEST_F(OperatorTest, PeriodicTicksUntilClosed) {
  ASSERT_TRUE(det_.DefinePeriodic("heartbeat", a_, 10, c_).ok());
  ASSERT_TRUE(det_.Subscribe("heartbeat", &sink_, ParamContext::kRecent).ok());
  det_.AdvanceTime(100);
  FireA();
  det_.AdvanceTime(135);  // ticks at 110, 120, 130
  EXPECT_EQ(sink_.hits.size(), 3u);
  FireC();  // close
  det_.AdvanceTime(200);
  EXPECT_EQ(sink_.hits.size(), 3u);
}

TEST_F(OperatorTest, PeriodicStarReportsOnceAtClose) {
  ASSERT_TRUE(det_.DefinePeriodicStar("hb_total", a_, 10, c_).ok());
  ASSERT_TRUE(det_.Subscribe("hb_total", &sink_, ParamContext::kRecent).ok());
  det_.AdvanceTime(100);
  FireA();
  det_.AdvanceTime(145);
  EXPECT_TRUE(sink_.hits.empty());
  FireC();
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Param("ticks")->AsInt(), 4);
}

// ---- Composition, sharing, flushing ------------------------------------------------

TEST_F(OperatorTest, NestedCompositeExpression) {
  // (a ^ b) ; c  — AND feeding a SEQ.
  auto a_and_b = det_.DefineAnd("a_and_b", a_, b_);
  ASSERT_TRUE(a_and_b.ok());
  ASSERT_TRUE(det_.DefineSeq("then_c", *a_and_b, c_).ok());
  ASSERT_TRUE(det_.Subscribe("then_c", &sink_, ParamContext::kRecent).ok());
  FireA();
  FireB();
  FireC();
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.constituents.size(), 3u);
}

TEST_F(OperatorTest, SharedSubexpressionServesTwoParents) {
  // Both (a^b) and ((a^b);c) use the same AND node (paper §3.1: common
  // sub-expressions represented once).
  auto a_and_b = det_.DefineAnd("a_and_b", a_, b_);
  ASSERT_TRUE(a_and_b.ok());
  ASSERT_TRUE(det_.DefineSeq("then_c", *a_and_b, c_).ok());
  RecordingSink and_sink, seq_sink;
  ASSERT_TRUE(det_.Subscribe("a_and_b", &and_sink, ParamContext::kRecent).ok());
  ASSERT_TRUE(det_.Subscribe("then_c", &seq_sink, ParamContext::kRecent).ok());
  FireA();
  FireB();
  FireC();
  EXPECT_EQ(and_sink.CountIn(ParamContext::kRecent), 1u);
  EXPECT_EQ(seq_sink.CountIn(ParamContext::kRecent), 1u);
  EXPECT_EQ(det_.node_count(), 5u);  // a, b, c, and, seq — no duplicates
}

TEST_F(OperatorTest, MultipleContextsOnOneGraph) {
  // The same AND node detects simultaneously in RECENT and CHRONICLE with
  // independent buffers (paper §3.2.2 item 1).
  ASSERT_TRUE(det_.DefineAnd("a_and_b", a_, b_).ok());
  RecordingSink recent_sink, chron_sink;
  ASSERT_TRUE(
      det_.Subscribe("a_and_b", &recent_sink, ParamContext::kRecent).ok());
  ASSERT_TRUE(
      det_.Subscribe("a_and_b", &chron_sink, ParamContext::kChronicle).ok());
  FireA(1);
  FireB(10);
  FireB(11);
  // RECENT: (a1,b10) and (a1,b11). CHRONICLE: (a1,b10) only.
  EXPECT_EQ(recent_sink.CountIn(ParamContext::kRecent), 2u);
  EXPECT_EQ(chron_sink.CountIn(ParamContext::kChronicle), 1u);
}

TEST_F(OperatorTest, ContextRefCountStopsDetectionAtZero) {
  ASSERT_TRUE(det_.DefineAnd("a_and_b", a_, b_).ok());
  ASSERT_TRUE(det_.Subscribe("a_and_b", &sink_, ParamContext::kRecent).ok());
  FireA();
  EXPECT_GT(det_.BufferedCount(), 0u);
  ASSERT_TRUE(det_.Unsubscribe("a_and_b", &sink_, ParamContext::kRecent).ok());
  FireB();
  EXPECT_TRUE(sink_.hits.empty());
  // No further buffering once inactive.
  std::size_t before = det_.BufferedCount();
  FireA();
  EXPECT_EQ(det_.BufferedCount(), before);
}

TEST_F(OperatorTest, FlushTxnDropsOnlyThatTransaction) {
  ASSERT_TRUE(det_.DefineAnd("a_and_b", a_, b_).ok());
  ASSERT_TRUE(det_.Subscribe("a_and_b", &sink_, ParamContext::kChronicle).ok());
  FireA(1, /*txn=*/1);
  FireA(2, /*txn=*/2);
  det_.FlushTxn(1);
  FireB(10, /*txn=*/2);  // only txn 2's initiator should remain
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Of("a")[0]->params->Get("v")->AsInt(), 2);
}

TEST_F(OperatorTest, FlushEventClearsSubtree) {
  auto a_and_b = det_.DefineAnd("a_and_b", a_, b_);
  ASSERT_TRUE(a_and_b.ok());
  ASSERT_TRUE(det_.DefineSeq("then_c", *a_and_b, c_).ok());
  ASSERT_TRUE(det_.Subscribe("then_c", &sink_, ParamContext::kRecent).ok());
  FireA();
  FireB();  // AND fired; SEQ holds the pair as initiator
  ASSERT_TRUE(det_.FlushEvent("then_c").ok());
  FireC();
  EXPECT_TRUE(sink_.hits.empty());
}

TEST_F(OperatorTest, FlushAllResetsEverything) {
  ASSERT_TRUE(det_.DefineAnd("a_and_b", a_, b_).ok());
  ASSERT_TRUE(det_.Subscribe("a_and_b", &sink_, ParamContext::kCumulative).ok());
  FireA(1);
  FireA(2);
  EXPECT_GT(det_.BufferedCount(), 0u);
  det_.FlushAll();
  EXPECT_EQ(det_.BufferedCount(), 0u);
  FireB(10);
  EXPECT_TRUE(sink_.hits.empty());
}

TEST_F(OperatorTest, BatchInjectReproducesOnlineDetection) {
  ASSERT_TRUE(det_.DefineSeq("a_then_b", a_, b_).ok());
  ASSERT_TRUE(det_.Subscribe("a_then_b", &sink_, ParamContext::kRecent).ok());

  PrimitiveOccurrence rec_a;
  rec_a.class_name = "C";
  rec_a.method_signature = "void fa()";
  rec_a.modifier = EventModifier::kEnd;
  rec_a.at = 1000;
  rec_a.txn = 9;
  rec_a.params = std::make_shared<ParamList>();
  PrimitiveOccurrence rec_b = rec_a;
  rec_b.method_signature = "void fb()";
  rec_b.at = 1001;

  det_.Inject(rec_a);
  det_.Inject(rec_b);
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.t_start, 1000u);
  EXPECT_EQ(sink_.hits[0].occurrence.t_end, 1001u);
}

// Parameterized sweep: every binary operator in every context detects at
// least once for the canonical "left then right" stream and never crashes.
using OpFactory = std::function<EventNode*(LocalEventDetector*, EventNode*,
                                           EventNode*, EventNode*)>;

class OperatorContextSweep
    : public ::testing::TestWithParam<std::tuple<int, ParamContext>> {};

TEST_P(OperatorContextSweep, CanonicalStreamDetects) {
  LocalEventDetector det;
  EventNode* a = *det.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
  EventNode* b = *det.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
  EventNode* c = *det.DefinePrimitive("c", "C", EventModifier::kEnd, "void fc()");
  const int op = std::get<0>(GetParam());
  const ParamContext ctx = std::get<1>(GetParam());
  switch (op) {
    case 0:
      ASSERT_TRUE(det.DefineOr("e", a, b).ok());
      break;
    case 1:
      ASSERT_TRUE(det.DefineAnd("e", a, b).ok());
      break;
    case 2:
      ASSERT_TRUE(det.DefineSeq("e", a, b).ok());
      break;
    case 3:
      ASSERT_TRUE(det.DefineNot("e", a, c, b).ok());
      break;
    case 4:
      ASSERT_TRUE(det.DefineAperiodic("e", a, b, c).ok());
      break;
    case 5:
      ASSERT_TRUE(det.DefineAperiodicStar("e", a, b, c).ok());
      break;
    default:
      FAIL();
  }
  RecordingSink sink;
  ASSERT_TRUE(det.Subscribe("e", &sink, ctx).ok());
  Fire(&det, "C", "void fa()", 1);
  Fire(&det, "C", "void fb()", 2);
  Fire(&det, "C", "void fc()", 3);
  EXPECT_GE(sink.CountIn(ctx), 1u)
      << "operator " << op << " in " << ParamContextToString(ctx);
  // Flushing in any state must leave the graph consistent.
  det.FlushAll();
  EXPECT_EQ(det.BufferedCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllOperatorsAllContexts, OperatorContextSweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(ParamContext::kRecent,
                                         ParamContext::kChronicle,
                                         ParamContext::kContinuous,
                                         ParamContext::kCumulative)));

}  // namespace
}  // namespace sentinel::detector
