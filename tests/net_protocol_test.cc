#include "net/protocol.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "detector/event_types.h"
#include "oodb/value.h"

namespace sentinel::net {
namespace {

using detector::EventModifier;
using detector::ParamContext;

// Feeds a complete wire frame and expects exactly one frame out.
FrameAssembler::Frame FeedOne(FrameAssembler* assembler,
                              const std::string& wire) {
  assembler->Feed(wire.data(), wire.size());
  FrameAssembler::Frame frame;
  auto ready = assembler->Next(&frame);
  EXPECT_TRUE(ready.ok()) << ready.status().ToString();
  EXPECT_TRUE(ready.ok() && *ready) << "frame not complete";
  return frame;
}

detector::PrimitiveOccurrence MakeOccurrence() {
  detector::PrimitiveOccurrence occ;
  occ.event_name = "submitted";
  occ.class_name = "Order";
  occ.oid = 7;
  occ.modifier = EventModifier::kBegin;
  occ.method_signature = "void submit(int)";
  occ.at = 42;
  occ.at_ms = 1234;
  occ.txn = 9;
  auto params = std::make_shared<detector::ParamList>();
  params->Insert("v", oodb::Value::Int(17));
  params->Insert("who", oodb::Value::String("alice"));
  occ.params = params;
  return occ;
}

TEST(NetProtocol, HelloRoundtrip) {
  HelloMsg msg;
  msg.seq = 3;
  msg.app_name = "inventory";

  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, msg.Encode());
  EXPECT_EQ(frame.type, MessageType::kHello);
  BytesReader reader(frame.body);
  auto decoded = HelloMsg::Decode(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->seq, 3u);
  EXPECT_EQ(decoded->app_name, "inventory");
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(NetProtocol, StatusReplyRoundtrip) {
  StatusReplyMsg msg;
  msg.seq = 0;  // unsolicited shed notice
  msg.code = WireCode::kRetryLater;
  msg.retry_after_ms = 75;
  msg.message = "admission queue full";

  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, msg.Encode());
  EXPECT_EQ(frame.type, MessageType::kStatusReply);
  BytesReader reader(frame.body);
  auto decoded = StatusReplyMsg::Decode(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->seq, 0u);
  EXPECT_EQ(decoded->code, WireCode::kRetryLater);
  EXPECT_EQ(decoded->retry_after_ms, 75u);
  EXPECT_EQ(decoded->message, "admission queue full");
}

TEST(NetProtocol, DefinePrimitiveRoundtrip) {
  DefinePrimitiveMsg msg;
  msg.seq = 11;
  msg.name = "g_submit";
  msg.app_name = "inventory";
  msg.class_name = "Order";
  msg.modifier = EventModifier::kBegin;
  msg.method_signature = "void submit(int)";

  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, msg.Encode());
  EXPECT_EQ(frame.type, MessageType::kDefinePrimitive);
  BytesReader reader(frame.body);
  auto decoded = DefinePrimitiveMsg::Decode(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->seq, 11u);
  EXPECT_EQ(decoded->name, "g_submit");
  EXPECT_EQ(decoded->app_name, "inventory");
  EXPECT_EQ(decoded->class_name, "Order");
  EXPECT_EQ(decoded->modifier, EventModifier::kBegin);
  EXPECT_EQ(decoded->method_signature, "void submit(int)");
}

TEST(NetProtocol, SubscribeAndByeRoundtrip) {
  SubscribeMsg sub;
  sub.seq = 4;
  sub.event = "g_submit";
  sub.context = ParamContext::kCumulative;

  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, sub.Encode());
  EXPECT_EQ(frame.type, MessageType::kSubscribe);
  BytesReader sub_reader(frame.body);
  auto sub_decoded = SubscribeMsg::Decode(&sub_reader);
  ASSERT_TRUE(sub_decoded.ok());
  EXPECT_EQ(sub_decoded->event, "g_submit");
  EXPECT_EQ(sub_decoded->context, ParamContext::kCumulative);

  ByeMsg bye;
  bye.reason = "slow consumer";
  frame = FeedOne(&assembler, bye.Encode());
  EXPECT_EQ(frame.type, MessageType::kBye);
  BytesReader bye_reader(frame.body);
  auto bye_decoded = ByeMsg::Decode(&bye_reader);
  ASSERT_TRUE(bye_decoded.ok());
  EXPECT_EQ(bye_decoded->reason, "slow consumer");
}

TEST(NetProtocol, OccurrenceRoundtrip) {
  const detector::PrimitiveOccurrence occ = MakeOccurrence();
  BytesWriter writer;
  EncodeOccurrence(occ, &writer);

  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, EncodeFrame(MessageType::kNotify, writer));
  EXPECT_EQ(frame.type, MessageType::kNotify);
  BytesReader reader(frame.body);
  auto decoded = DecodeOccurrence(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->event_name, "submitted");
  EXPECT_EQ(decoded->class_name, "Order");
  EXPECT_EQ(decoded->oid, 7u);
  EXPECT_EQ(decoded->modifier, EventModifier::kBegin);
  EXPECT_EQ(decoded->method_signature, "void submit(int)");
  EXPECT_EQ(decoded->at, 42u);
  EXPECT_EQ(decoded->at_ms, 1234u);
  EXPECT_EQ(decoded->txn, 9u);
  ASSERT_TRUE(decoded->params != nullptr);
  auto v = decoded->params->Get("v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 17);
  auto who = decoded->params->Get("who");
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(who->AsString(), "alice");
}

TEST(NetProtocol, EventPushRoundtrip) {
  EventPushMsg msg;
  msg.event = "g_pair";
  msg.occurrence.event_name = "g_pair";
  msg.occurrence.t_start = 10;
  msg.occurrence.t_end = 20;
  msg.occurrence.at_ms = 555;
  msg.occurrence.txn = 3;
  msg.occurrence.constituents.push_back(
      std::make_shared<detector::PrimitiveOccurrence>(MakeOccurrence()));
  auto second = MakeOccurrence();
  second.event_name = "shipped";
  second.params = nullptr;  // constituents without parameters survive, too
  msg.occurrence.constituents.push_back(
      std::make_shared<detector::PrimitiveOccurrence>(second));

  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, msg.Encode());
  EXPECT_EQ(frame.type, MessageType::kEventPush);
  BytesReader reader(frame.body);
  auto decoded = EventPushMsg::Decode(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->event, "g_pair");
  EXPECT_EQ(decoded->occurrence.t_start, 10u);
  EXPECT_EQ(decoded->occurrence.t_end, 20u);
  ASSERT_EQ(decoded->occurrence.constituents.size(), 2u);
  EXPECT_EQ(decoded->occurrence.constituents[1]->event_name, "shipped");
  // The parameter lookup path works across decoded constituents.
  auto v = decoded->occurrence.Param("v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 17);
}

TEST(NetProtocol, TraceContextTrailerRoundtrip) {
  const detector::PrimitiveOccurrence occ = MakeOccurrence();
  BytesWriter writer;
  EncodeOccurrence(occ, &writer);
  TraceContext tc;
  tc.trace_id = 0xABCDEF0123456789ull;
  tc.parent_span = 42;
  tc.origin_ns = 1700000000000000000ull;
  AppendTraceContext(tc, &writer);

  FrameAssembler assembler;
  auto frame = FeedOne(
      &assembler,
      EncodeFrame(MessageType::kNotify, writer, kFlagTraceContext));
  EXPECT_EQ(frame.flags & kFlagTraceContext, kFlagTraceContext);
  BytesReader reader(frame.body);
  auto decoded = DecodeOccurrence(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->event_name, "submitted");
  const TraceContext back = ReadTraceContext(frame.flags, &reader);
  EXPECT_EQ(back.trace_id, tc.trace_id);
  EXPECT_EQ(back.parent_span, tc.parent_span);
  EXPECT_EQ(back.origin_ns, tc.origin_ns);
}

TEST(NetProtocol, TraceContextAbsentYieldsZeros) {
  // Pre-trailer frame (no flag, no trailer bytes): decoding must not fail
  // and the context must read as all-zero — version tolerance forward.
  const detector::PrimitiveOccurrence occ = MakeOccurrence();
  BytesWriter writer;
  EncodeOccurrence(occ, &writer);
  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, EncodeFrame(MessageType::kNotify, writer));
  EXPECT_EQ(frame.flags, 0u);
  BytesReader reader(frame.body);
  ASSERT_TRUE(DecodeOccurrence(&reader).ok());
  const TraceContext none = ReadTraceContext(frame.flags, &reader);
  EXPECT_EQ(none.trace_id, 0u);
  EXPECT_EQ(none.parent_span, 0u);
  EXPECT_EQ(none.origin_ns, 0u);
  EXPECT_FALSE(none.traced());
  EXPECT_FALSE(none.has_origin());

  // Flag set but trailer truncated: tolerated as absent, never an error.
  BytesReader short_reader(frame.body);
  ASSERT_TRUE(DecodeOccurrence(&short_reader).ok());
  const TraceContext truncated =
      ReadTraceContext(kFlagTraceContext, &short_reader);
  EXPECT_EQ(truncated.trace_id, 0u);
  EXPECT_EQ(truncated.origin_ns, 0u);
}

TEST(NetProtocol, UnknownFlagBitsAreCarriedNotRefused) {
  // A future peer may set flag bits this build does not know. The header
  // must parse, the frame must decode, and the unknown bits must be
  // visible to the caller (explicitly ignored, never poisoning).
  const std::uint16_t flags = kFlagTraceContext | 0x4000 | 0x0002;
  HelloMsg msg;
  msg.seq = 8;
  msg.app_name = "future";
  BytesWriter body;
  body.PutU32(msg.seq);
  body.PutString(msg.app_name);
  const std::string wire = EncodeFrame(MessageType::kHello, body, flags);

  auto header = FrameHeader::Parse(
      reinterpret_cast<const std::uint8_t*>(wire.data()),
      kDefaultMaxFrameBytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->flags, flags);

  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, wire);
  EXPECT_EQ(frame.flags, flags);
  BytesReader reader(frame.body);
  auto decoded = HelloMsg::Decode(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->app_name, "future");
}

TEST(NetProtocol, EventPushCarriesTraceContext) {
  EventPushMsg msg;
  msg.event = "g_traced";
  msg.occurrence.event_name = "g_traced";
  msg.occurrence.constituents.push_back(
      std::make_shared<detector::PrimitiveOccurrence>(MakeOccurrence()));
  msg.trace.trace_id = 77;
  msg.trace.parent_span = 5;
  msg.trace.origin_ns = 123456789;

  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, msg.Encode());
  EXPECT_EQ(frame.flags & kFlagTraceContext, kFlagTraceContext);
  BytesReader reader(frame.body);
  auto decoded = EventPushMsg::Decode(&reader, frame.flags);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->trace.trace_id, 77u);
  EXPECT_EQ(decoded->trace.parent_span, 5u);
  EXPECT_EQ(decoded->trace.origin_ns, 123456789u);

  // An untraced push keeps the legacy empty-flags wire shape.
  EventPushMsg plain;
  plain.event = "g_plain";
  plain.occurrence.event_name = "g_plain";
  auto plain_frame = FeedOne(&assembler, plain.Encode());
  EXPECT_EQ(plain_frame.flags, 0u);
  BytesReader plain_reader(plain_frame.body);
  auto plain_decoded = EventPushMsg::Decode(&plain_reader, plain_frame.flags);
  ASSERT_TRUE(plain_decoded.ok());
  EXPECT_EQ(plain_decoded->trace.trace_id, 0u);
}

TEST(NetProtocol, TimestampedPingPongRoundtrip) {
  FrameAssembler assembler;
  auto ping = FeedOne(&assembler, EncodePing(987654321));
  EXPECT_EQ(ping.type, MessageType::kPing);
  BytesReader ping_reader(ping.body);
  EXPECT_EQ(ReadPingT0(&ping_reader), 987654321u);

  auto pong = FeedOne(&assembler, EncodePong(987654321, 987700000));
  EXPECT_EQ(pong.type, MessageType::kPong);
  BytesReader pong_reader(pong.body);
  std::uint64_t echo = 0;
  std::uint64_t responder = 0;
  ASSERT_TRUE(ReadPongTimes(&pong_reader, &echo, &responder));
  EXPECT_EQ(echo, 987654321u);
  EXPECT_EQ(responder, 987700000u);

  // Pre-PR9 empty heartbeats: no timestamp, no RTT sample, no error.
  auto old_ping = FeedOne(&assembler, EncodeFrame(MessageType::kPing));
  BytesReader old_ping_reader(old_ping.body);
  EXPECT_EQ(ReadPingT0(&old_ping_reader), 0u);
  auto old_pong = FeedOne(&assembler, EncodeFrame(MessageType::kPong));
  BytesReader old_pong_reader(old_pong.body);
  EXPECT_FALSE(ReadPongTimes(&old_pong_reader, &echo, &responder));
}

TEST(NetProtocol, EmptyBodyPingPong) {
  FrameAssembler assembler;
  auto ping = FeedOne(&assembler, EncodeFrame(MessageType::kPing));
  EXPECT_EQ(ping.type, MessageType::kPing);
  EXPECT_TRUE(ping.body.empty());
  auto pong = FeedOne(&assembler, EncodeFrame(MessageType::kPong));
  EXPECT_EQ(pong.type, MessageType::kPong);
}

TEST(NetProtocol, IncrementalByteByByteReassembly) {
  HelloMsg first;
  first.seq = 1;
  first.app_name = "a";
  ByeMsg second;
  second.reason = "done";
  const std::string wire = first.Encode() + second.Encode();

  FrameAssembler assembler;
  std::vector<FrameAssembler::Frame> frames;
  for (char byte : wire) {
    assembler.Feed(&byte, 1);
    FrameAssembler::Frame frame;
    auto ready = assembler.Next(&frame);
    ASSERT_TRUE(ready.ok()) << ready.status().ToString();
    if (*ready) frames.push_back(std::move(frame));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MessageType::kHello);
  EXPECT_EQ(frames[1].type, MessageType::kBye);
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(NetProtocol, TruncatedFrameWaitsForMoreBytes) {
  HelloMsg msg;
  msg.seq = 2;
  msg.app_name = "truncated";
  const std::string wire = msg.Encode();

  FrameAssembler assembler;
  assembler.Feed(wire.data(), wire.size() - 1);
  FrameAssembler::Frame frame;
  auto ready = assembler.Next(&frame);
  ASSERT_TRUE(ready.ok());
  EXPECT_FALSE(*ready);
  EXPECT_GT(assembler.buffered(), 0u);

  assembler.Feed(wire.data() + wire.size() - 1, 1);
  ready = assembler.Next(&frame);
  ASSERT_TRUE(ready.ok());
  EXPECT_TRUE(*ready);
  EXPECT_EQ(frame.type, MessageType::kHello);
}

TEST(NetProtocol, CrcCorruptionPoisonsTheStream) {
  HelloMsg msg;
  msg.seq = 5;
  msg.app_name = "victim";
  std::string wire = msg.Encode();
  wire[kFrameHeaderBytes] ^= 0x01;  // flip one body bit

  FrameAssembler assembler;
  assembler.Feed(wire.data(), wire.size());
  FrameAssembler::Frame frame;
  auto ready = assembler.Next(&frame);
  EXPECT_FALSE(ready.ok());

  // Poisoning is sticky: even a pristine follow-up frame is refused.
  const std::string good = HelloMsg{6, "fresh"}.Encode();
  assembler.Feed(good.data(), good.size());
  ready = assembler.Next(&frame);
  EXPECT_FALSE(ready.ok());
}

TEST(NetProtocol, BadMagicRejected) {
  std::string garbage(kFrameHeaderBytes + 4, '\xAA');
  FrameAssembler assembler;
  assembler.Feed(garbage.data(), garbage.size());
  FrameAssembler::Frame frame;
  auto ready = assembler.Next(&frame);
  EXPECT_FALSE(ready.ok());
}

TEST(NetProtocol, OversizedFrameRejectedBeforeBuffering) {
  HelloMsg msg;
  msg.seq = 1;
  msg.app_name = std::string(256, 'x');
  const std::string wire = msg.Encode();

  FrameAssembler small(/*max_frame_bytes=*/64);
  small.Feed(wire.data(), kFrameHeaderBytes);  // header alone condemns it
  FrameAssembler::Frame frame;
  auto ready = small.Next(&frame);
  EXPECT_FALSE(ready.ok());
}

TEST(NetProtocol, HeaderParseValidates) {
  const std::string wire = EncodeFrame(MessageType::kPing);
  auto header = FrameHeader::Parse(
      reinterpret_cast<const std::uint8_t*>(wire.data()),
      kDefaultMaxFrameBytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, MessageType::kPing);
  EXPECT_EQ(header->body_len, 0u);

  std::string bad = wire;
  bad[4] = 99;  // unsupported version byte
  auto refused = FrameHeader::Parse(
      reinterpret_cast<const std::uint8_t*>(bad.data()), kDefaultMaxFrameBytes);
  EXPECT_FALSE(refused.ok());
}

}  // namespace
}  // namespace sentinel::net
