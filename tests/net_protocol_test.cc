#include "net/protocol.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "detector/event_types.h"
#include "oodb/value.h"

namespace sentinel::net {
namespace {

using detector::EventModifier;
using detector::ParamContext;

// Feeds a complete wire frame and expects exactly one frame out.
FrameAssembler::Frame FeedOne(FrameAssembler* assembler,
                              const std::string& wire) {
  assembler->Feed(wire.data(), wire.size());
  FrameAssembler::Frame frame;
  auto ready = assembler->Next(&frame);
  EXPECT_TRUE(ready.ok()) << ready.status().ToString();
  EXPECT_TRUE(ready.ok() && *ready) << "frame not complete";
  return frame;
}

detector::PrimitiveOccurrence MakeOccurrence() {
  detector::PrimitiveOccurrence occ;
  occ.event_name = "submitted";
  occ.class_name = "Order";
  occ.oid = 7;
  occ.modifier = EventModifier::kBegin;
  occ.method_signature = "void submit(int)";
  occ.at = 42;
  occ.at_ms = 1234;
  occ.txn = 9;
  auto params = std::make_shared<detector::ParamList>();
  params->Insert("v", oodb::Value::Int(17));
  params->Insert("who", oodb::Value::String("alice"));
  occ.params = params;
  return occ;
}

TEST(NetProtocol, HelloRoundtrip) {
  HelloMsg msg;
  msg.seq = 3;
  msg.app_name = "inventory";

  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, msg.Encode());
  EXPECT_EQ(frame.type, MessageType::kHello);
  BytesReader reader(frame.body);
  auto decoded = HelloMsg::Decode(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->seq, 3u);
  EXPECT_EQ(decoded->app_name, "inventory");
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(NetProtocol, StatusReplyRoundtrip) {
  StatusReplyMsg msg;
  msg.seq = 0;  // unsolicited shed notice
  msg.code = WireCode::kRetryLater;
  msg.retry_after_ms = 75;
  msg.message = "admission queue full";

  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, msg.Encode());
  EXPECT_EQ(frame.type, MessageType::kStatusReply);
  BytesReader reader(frame.body);
  auto decoded = StatusReplyMsg::Decode(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->seq, 0u);
  EXPECT_EQ(decoded->code, WireCode::kRetryLater);
  EXPECT_EQ(decoded->retry_after_ms, 75u);
  EXPECT_EQ(decoded->message, "admission queue full");
}

TEST(NetProtocol, DefinePrimitiveRoundtrip) {
  DefinePrimitiveMsg msg;
  msg.seq = 11;
  msg.name = "g_submit";
  msg.app_name = "inventory";
  msg.class_name = "Order";
  msg.modifier = EventModifier::kBegin;
  msg.method_signature = "void submit(int)";

  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, msg.Encode());
  EXPECT_EQ(frame.type, MessageType::kDefinePrimitive);
  BytesReader reader(frame.body);
  auto decoded = DefinePrimitiveMsg::Decode(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->seq, 11u);
  EXPECT_EQ(decoded->name, "g_submit");
  EXPECT_EQ(decoded->app_name, "inventory");
  EXPECT_EQ(decoded->class_name, "Order");
  EXPECT_EQ(decoded->modifier, EventModifier::kBegin);
  EXPECT_EQ(decoded->method_signature, "void submit(int)");
}

TEST(NetProtocol, SubscribeAndByeRoundtrip) {
  SubscribeMsg sub;
  sub.seq = 4;
  sub.event = "g_submit";
  sub.context = ParamContext::kCumulative;

  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, sub.Encode());
  EXPECT_EQ(frame.type, MessageType::kSubscribe);
  BytesReader sub_reader(frame.body);
  auto sub_decoded = SubscribeMsg::Decode(&sub_reader);
  ASSERT_TRUE(sub_decoded.ok());
  EXPECT_EQ(sub_decoded->event, "g_submit");
  EXPECT_EQ(sub_decoded->context, ParamContext::kCumulative);

  ByeMsg bye;
  bye.reason = "slow consumer";
  frame = FeedOne(&assembler, bye.Encode());
  EXPECT_EQ(frame.type, MessageType::kBye);
  BytesReader bye_reader(frame.body);
  auto bye_decoded = ByeMsg::Decode(&bye_reader);
  ASSERT_TRUE(bye_decoded.ok());
  EXPECT_EQ(bye_decoded->reason, "slow consumer");
}

TEST(NetProtocol, OccurrenceRoundtrip) {
  const detector::PrimitiveOccurrence occ = MakeOccurrence();
  BytesWriter writer;
  EncodeOccurrence(occ, &writer);

  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, EncodeFrame(MessageType::kNotify, writer));
  EXPECT_EQ(frame.type, MessageType::kNotify);
  BytesReader reader(frame.body);
  auto decoded = DecodeOccurrence(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->event_name, "submitted");
  EXPECT_EQ(decoded->class_name, "Order");
  EXPECT_EQ(decoded->oid, 7u);
  EXPECT_EQ(decoded->modifier, EventModifier::kBegin);
  EXPECT_EQ(decoded->method_signature, "void submit(int)");
  EXPECT_EQ(decoded->at, 42u);
  EXPECT_EQ(decoded->at_ms, 1234u);
  EXPECT_EQ(decoded->txn, 9u);
  ASSERT_TRUE(decoded->params != nullptr);
  auto v = decoded->params->Get("v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 17);
  auto who = decoded->params->Get("who");
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(who->AsString(), "alice");
}

TEST(NetProtocol, EventPushRoundtrip) {
  EventPushMsg msg;
  msg.event = "g_pair";
  msg.occurrence.event_name = "g_pair";
  msg.occurrence.t_start = 10;
  msg.occurrence.t_end = 20;
  msg.occurrence.at_ms = 555;
  msg.occurrence.txn = 3;
  msg.occurrence.constituents.push_back(
      std::make_shared<detector::PrimitiveOccurrence>(MakeOccurrence()));
  auto second = MakeOccurrence();
  second.event_name = "shipped";
  second.params = nullptr;  // constituents without parameters survive, too
  msg.occurrence.constituents.push_back(
      std::make_shared<detector::PrimitiveOccurrence>(second));

  FrameAssembler assembler;
  auto frame = FeedOne(&assembler, msg.Encode());
  EXPECT_EQ(frame.type, MessageType::kEventPush);
  BytesReader reader(frame.body);
  auto decoded = EventPushMsg::Decode(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->event, "g_pair");
  EXPECT_EQ(decoded->occurrence.t_start, 10u);
  EXPECT_EQ(decoded->occurrence.t_end, 20u);
  ASSERT_EQ(decoded->occurrence.constituents.size(), 2u);
  EXPECT_EQ(decoded->occurrence.constituents[1]->event_name, "shipped");
  // The parameter lookup path works across decoded constituents.
  auto v = decoded->occurrence.Param("v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 17);
}

TEST(NetProtocol, EmptyBodyPingPong) {
  FrameAssembler assembler;
  auto ping = FeedOne(&assembler, EncodeFrame(MessageType::kPing));
  EXPECT_EQ(ping.type, MessageType::kPing);
  EXPECT_TRUE(ping.body.empty());
  auto pong = FeedOne(&assembler, EncodeFrame(MessageType::kPong));
  EXPECT_EQ(pong.type, MessageType::kPong);
}

TEST(NetProtocol, IncrementalByteByByteReassembly) {
  HelloMsg first;
  first.seq = 1;
  first.app_name = "a";
  ByeMsg second;
  second.reason = "done";
  const std::string wire = first.Encode() + second.Encode();

  FrameAssembler assembler;
  std::vector<FrameAssembler::Frame> frames;
  for (char byte : wire) {
    assembler.Feed(&byte, 1);
    FrameAssembler::Frame frame;
    auto ready = assembler.Next(&frame);
    ASSERT_TRUE(ready.ok()) << ready.status().ToString();
    if (*ready) frames.push_back(std::move(frame));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MessageType::kHello);
  EXPECT_EQ(frames[1].type, MessageType::kBye);
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(NetProtocol, TruncatedFrameWaitsForMoreBytes) {
  HelloMsg msg;
  msg.seq = 2;
  msg.app_name = "truncated";
  const std::string wire = msg.Encode();

  FrameAssembler assembler;
  assembler.Feed(wire.data(), wire.size() - 1);
  FrameAssembler::Frame frame;
  auto ready = assembler.Next(&frame);
  ASSERT_TRUE(ready.ok());
  EXPECT_FALSE(*ready);
  EXPECT_GT(assembler.buffered(), 0u);

  assembler.Feed(wire.data() + wire.size() - 1, 1);
  ready = assembler.Next(&frame);
  ASSERT_TRUE(ready.ok());
  EXPECT_TRUE(*ready);
  EXPECT_EQ(frame.type, MessageType::kHello);
}

TEST(NetProtocol, CrcCorruptionPoisonsTheStream) {
  HelloMsg msg;
  msg.seq = 5;
  msg.app_name = "victim";
  std::string wire = msg.Encode();
  wire[kFrameHeaderBytes] ^= 0x01;  // flip one body bit

  FrameAssembler assembler;
  assembler.Feed(wire.data(), wire.size());
  FrameAssembler::Frame frame;
  auto ready = assembler.Next(&frame);
  EXPECT_FALSE(ready.ok());

  // Poisoning is sticky: even a pristine follow-up frame is refused.
  const std::string good = HelloMsg{6, "fresh"}.Encode();
  assembler.Feed(good.data(), good.size());
  ready = assembler.Next(&frame);
  EXPECT_FALSE(ready.ok());
}

TEST(NetProtocol, BadMagicRejected) {
  std::string garbage(kFrameHeaderBytes + 4, '\xAA');
  FrameAssembler assembler;
  assembler.Feed(garbage.data(), garbage.size());
  FrameAssembler::Frame frame;
  auto ready = assembler.Next(&frame);
  EXPECT_FALSE(ready.ok());
}

TEST(NetProtocol, OversizedFrameRejectedBeforeBuffering) {
  HelloMsg msg;
  msg.seq = 1;
  msg.app_name = std::string(256, 'x');
  const std::string wire = msg.Encode();

  FrameAssembler small(/*max_frame_bytes=*/64);
  small.Feed(wire.data(), kFrameHeaderBytes);  // header alone condemns it
  FrameAssembler::Frame frame;
  auto ready = small.Next(&frame);
  EXPECT_FALSE(ready.ok());
}

TEST(NetProtocol, HeaderParseValidates) {
  const std::string wire = EncodeFrame(MessageType::kPing);
  auto header = FrameHeader::Parse(
      reinterpret_cast<const std::uint8_t*>(wire.data()),
      kDefaultMaxFrameBytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, MessageType::kPing);
  EXPECT_EQ(header->body_len, 0u);

  std::string bad = wire;
  bad[4] = 99;  // unsupported version byte
  auto refused = FrameHeader::Parse(
      reinterpret_cast<const std::uint8_t*>(bad.data()), kDefaultMaxFrameBytes);
  EXPECT_FALSE(refused.ok());
}

}  // namespace
}  // namespace sentinel::net
