#include "storage/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace sentinel::storage {
namespace {

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Holds(1, "k", LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, "k", LockMode::kShared));
  EXPECT_FALSE(lm.Holds(1, "k", LockMode::kExclusive));
}

TEST(LockManagerTest, ExclusiveBlocksOthers) {
  LockManager lm(LockManager::Options{std::chrono::milliseconds(100)});
  EXPECT_TRUE(lm.Acquire(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, "k", LockMode::kShared).IsLockTimeout());
  EXPECT_TRUE(lm.Acquire(3, "k", LockMode::kExclusive).IsLockTimeout());
}

TEST(LockManagerTest, ReacquireIsIdempotent) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Holds(1, "k", LockMode::kExclusive));
}

TEST(LockManagerTest, UpgradeSharedToExclusive) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, "k", LockMode::kExclusive));
}

TEST(LockManagerTest, ReleaseAllWakesWaiters) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "k", LockMode::kExclusive).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    ASSERT_TRUE(lm.Acquire(2, "k", LockMode::kExclusive).ok());
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted);
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(granted);
}

TEST(LockManagerTest, DeadlockDetectedNotTimedOut) {
  LockManager lm(LockManager::Options{std::chrono::seconds(10)});
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(2, "b", LockMode::kExclusive).ok());

  Status s2;
  std::thread t2([&] {
    s2 = lm.Acquire(2, "a", LockMode::kExclusive);
    if (!s2.ok()) lm.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Closing the cycle must produce a deadlock error quickly, not a 10s wait.
  auto start = std::chrono::steady_clock::now();
  Status s1 = lm.Acquire(1, "b", LockMode::kExclusive);
  auto elapsed = std::chrono::steady_clock::now() - start;
  if (!s1.ok()) lm.ReleaseAll(1);
  t2.join();
  EXPECT_TRUE(s1.IsDeadlock() || s2.IsDeadlock());
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(LockManagerTest, LockedKeyCount) {
  LockManager lm;
  EXPECT_EQ(lm.locked_key_count(), 0u);
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(1, "b", LockMode::kExclusive).ok());
  EXPECT_EQ(lm.locked_key_count(), 2u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.locked_key_count(), 0u);
}

}  // namespace
}  // namespace sentinel::storage
