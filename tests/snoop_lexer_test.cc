#include "snoop/lexer.h"

#include <gtest/gtest.h>

#include <vector>

namespace sentinel::snoop {
namespace {

std::vector<Token> LexAll(const std::string& src) {
  Lexer lexer(src);
  std::vector<Token> tokens;
  while (lexer.Peek().kind != TokenKind::kEnd) {
    tokens.push_back(lexer.Next());
  }
  return tokens;
}

TEST(LexerTest, Punctuation) {
  auto tokens = LexAll("( ) { } [ ] , ; : = ^ | * &&");
  ASSERT_EQ(tokens.size(), 14u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[1].kind, TokenKind::kRParen);
  EXPECT_EQ(tokens[2].kind, TokenKind::kLBrace);
  EXPECT_EQ(tokens[3].kind, TokenKind::kRBrace);
  EXPECT_EQ(tokens[4].kind, TokenKind::kLBracket);
  EXPECT_EQ(tokens[5].kind, TokenKind::kRBracket);
  EXPECT_EQ(tokens[6].kind, TokenKind::kComma);
  EXPECT_EQ(tokens[7].kind, TokenKind::kSemicolon);
  EXPECT_EQ(tokens[8].kind, TokenKind::kColon);
  EXPECT_EQ(tokens[9].kind, TokenKind::kEquals);
  EXPECT_EQ(tokens[10].kind, TokenKind::kCaret);
  EXPECT_EQ(tokens[11].kind, TokenKind::kPipe);
  EXPECT_EQ(tokens[12].kind, TokenKind::kStar);
  EXPECT_EQ(tokens[13].kind, TokenKind::kAmpAmp);
}

TEST(LexerTest, IdentifiersAndKeywordsAreJustIdents) {
  auto tokens = LexAll("event e_1 begin Class_Name");
  ASSERT_EQ(tokens.size(), 4u);
  for (const auto& t : tokens) EXPECT_EQ(t.kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].text, "e_1");
}

TEST(LexerTest, NumbersWithOptionalMsSuffix) {
  auto tokens = LexAll("100 250ms 0");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].number, 100u);
  EXPECT_EQ(tokens[1].number, 250u);
  EXPECT_EQ(tokens[2].number, 0u);
}

TEST(LexerTest, StringsPreserveContent) {
  auto tokens = LexAll(R"lex("void set_price(float price)" "x")lex");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "void set_price(float price)");
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(LexerTest, LineAndBlockComments) {
  auto tokens = LexAll("a // comment\nb /* multi\nline */ c");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(LexerTest, LineNumbersTracked) {
  Lexer lexer("a\nb\n\nc");
  EXPECT_EQ(lexer.Next().line, 1);
  EXPECT_EQ(lexer.Next().line, 2);
  EXPECT_EQ(lexer.Next().line, 4);
}

TEST(LexerTest, CaptureUntilSemicolon) {
  Lexer lexer("int sell_stock(int qty) ; next");
  auto sig = lexer.CaptureUntilSemicolon();
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(*sig, "int sell_stock(int qty)");
  EXPECT_EQ(lexer.Peek().text, "next");
}

TEST(LexerTest, CaptureWithoutSemicolonFails) {
  Lexer lexer("no terminator here");
  EXPECT_TRUE(lexer.CaptureUntilSemicolon().status().IsParseError());
}

TEST(LexerTest, EmptyInput) {
  Lexer lexer("");
  EXPECT_EQ(lexer.Peek().kind, TokenKind::kEnd);
  EXPECT_EQ(lexer.Next().kind, TokenKind::kEnd);
  EXPECT_EQ(lexer.Next().kind, TokenKind::kEnd);  // stable at end
}

TEST(LexerTest, UnterminatedStringDoesNotCrash) {
  auto tokens = LexAll("\"never closed");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "never closed");
}

}  // namespace
}  // namespace sentinel::snoop
