// Temporal operator edge cases: PLUS/P/P* under multiple pending timers,
// context interactions, flushing, and clock monotonicity.

#include <gtest/gtest.h>

#include "detector/local_detector.h"
#include "detector_test_util.h"

namespace sentinel::detector {
namespace {

class TemporalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = *det_.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
    c_ = *det_.DefinePrimitive("c", "C", EventModifier::kEnd, "void fc()");
  }
  void FireA(int v = 0, TxnId txn = 1) { Fire(&det_, "C", "void fa()", v, txn); }
  void FireC(int v = 0, TxnId txn = 1) { Fire(&det_, "C", "void fc()", v, txn); }

  LocalEventDetector det_;
  EventNode* a_ = nullptr;
  EventNode* c_ = nullptr;
  RecordingSink sink_;
};

TEST_F(TemporalTest, MultiplePendingPlusTimersFireInOrder) {
  ASSERT_TRUE(det_.DefinePlus("p", a_, 100).ok());
  ASSERT_TRUE(det_.Subscribe("p", &sink_, ParamContext::kChronicle).ok());
  det_.AdvanceTime(0);
  FireA(1);  // due at 100
  det_.AdvanceTime(50);
  FireA(2);  // due at 150
  det_.AdvanceTime(120);
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Param("v")->AsInt(), 1);
  det_.AdvanceTime(200);
  ASSERT_EQ(sink_.hits.size(), 2u);
  EXPECT_EQ(sink_.hits[1].occurrence.Param("v")->AsInt(), 2);
}

TEST_F(TemporalTest, PlusRecentKeepsOnlyLatestPending) {
  ASSERT_TRUE(det_.DefinePlus("p", a_, 100).ok());
  ASSERT_TRUE(det_.Subscribe("p", &sink_, ParamContext::kRecent).ok());
  det_.AdvanceTime(0);
  FireA(1);
  FireA(2);  // RECENT: replaces the pending timer
  det_.AdvanceTime(1000);
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Param("v")->AsInt(), 2);
}

TEST_F(TemporalTest, ClockNeverGoesBackwards) {
  ASSERT_TRUE(det_.DefinePlus("p", a_, 10).ok());
  ASSERT_TRUE(det_.Subscribe("p", &sink_, ParamContext::kRecent).ok());
  det_.AdvanceTime(500);
  EXPECT_EQ(det_.now_ms(), 500u);
  det_.AdvanceTime(100);  // ignored
  EXPECT_EQ(det_.now_ms(), 500u);
  FireA(1);
  det_.AdvanceTime(510);
  EXPECT_EQ(sink_.hits.size(), 1u);
}

TEST_F(TemporalTest, FlushTxnCancelsPendingTimers) {
  ASSERT_TRUE(det_.DefinePlus("p", a_, 100).ok());
  ASSERT_TRUE(det_.Subscribe("p", &sink_, ParamContext::kChronicle).ok());
  det_.AdvanceTime(0);
  FireA(1, /*txn=*/1);
  FireA(2, /*txn=*/2);
  det_.FlushTxn(1);
  det_.AdvanceTime(1000);
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Param("v")->AsInt(), 2);
}

TEST_F(TemporalTest, PeriodicMultipleSchedulesInChronicle) {
  ASSERT_TRUE(det_.DefinePeriodic("p", a_, 100, c_).ok());
  ASSERT_TRUE(det_.Subscribe("p", &sink_, ParamContext::kChronicle).ok());
  det_.AdvanceTime(0);
  FireA(1);  // ticks at 100, 200, ...
  det_.AdvanceTime(50);
  FireA(2);  // ticks at 150, 250, ...
  det_.AdvanceTime(210);
  // Schedule 1: 100, 200. Schedule 2: 150.
  EXPECT_EQ(sink_.hits.size(), 3u);
  FireC();  // closes both
  det_.AdvanceTime(1000);
  EXPECT_EQ(sink_.hits.size(), 3u);
}

TEST_F(TemporalTest, PeriodicCloseOnlyAffectsPrecedingOpeners) {
  ASSERT_TRUE(det_.DefinePeriodic("p", a_, 100, c_).ok());
  ASSERT_TRUE(det_.Subscribe("p", &sink_, ParamContext::kChronicle).ok());
  det_.AdvanceTime(0);
  FireC();   // closer before any opener: no effect
  FireA(1);
  det_.AdvanceTime(150);
  EXPECT_EQ(sink_.hits.size(), 1u);
}

TEST_F(TemporalTest, PeriodicStarAccumulatesTickTimes) {
  ASSERT_TRUE(det_.DefinePeriodicStar("p", a_, 100, c_).ok());
  ASSERT_TRUE(det_.Subscribe("p", &sink_, ParamContext::kRecent).ok());
  det_.AdvanceTime(0);
  FireA();
  det_.AdvanceTime(350);  // ticks at 100, 200, 300
  EXPECT_TRUE(sink_.hits.empty());
  FireC();
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Param("ticks")->AsInt(), 3);
  EXPECT_EQ(sink_.hits[0].occurrence.Param("tick_ms_0")->AsInt(), 100);
  EXPECT_EQ(sink_.hits[0].occurrence.Param("tick_ms_2")->AsInt(), 300);
}

TEST_F(TemporalTest, PeriodicStarSilentWithZeroTicks) {
  ASSERT_TRUE(det_.DefinePeriodicStar("p", a_, 1000, c_).ok());
  ASSERT_TRUE(det_.Subscribe("p", &sink_, ParamContext::kRecent).ok());
  det_.AdvanceTime(0);
  FireA();
  det_.AdvanceTime(10);  // no full period elapsed
  FireC();
  EXPECT_TRUE(sink_.hits.empty());
}

TEST_F(TemporalTest, PlusFeedsCompositeExpression) {
  // SEQ(a, PLUS(a, 100)): fires when the timer elapses after a second a.
  auto plus = det_.DefinePlus("a_plus", a_, 100);
  ASSERT_TRUE(plus.ok());
  ASSERT_TRUE(det_.DefineSeq("seq", a_, *plus).ok());
  ASSERT_TRUE(det_.Subscribe("seq", &sink_, ParamContext::kRecent).ok());
  det_.AdvanceTime(0);
  FireA(1);
  det_.AdvanceTime(100);  // PLUS fires; SEQ pairs a@t1 with plus@t2
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.constituents.size(), 2u);
}

TEST_F(TemporalTest, InactiveContextTimersDoNotFire) {
  ASSERT_TRUE(det_.DefinePlus("p", a_, 50).ok());
  // No subscription -> no active context -> the PLUS node receives nothing.
  det_.AdvanceTime(0);
  FireA(1);
  det_.AdvanceTime(1000);
  EXPECT_EQ(det_.BufferedCount(), 0u);
}

}  // namespace
}  // namespace sentinel::detector
