// Failpoint chaos matrix for the network plane, in the style of the crash
// matrix: every fault the wire can throw — torn frames, failed reads and
// writes, refused connects, a stalled dispatcher — is injected while
// traffic flows, and in every case the contract is the same: the daemon
// never crashes, overload degrades /healthz instead of killing the
// process, and every client reconnects with backoff and resumes receiving
// detections.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/active_database.h"
#include "detector/event_types.h"
#include "ged/global_detector.h"
#include "net/event_bus_server.h"
#include "net/remote_client.h"
#include "obs/span.h"
#include "oodb/value.h"

namespace sentinel::net {
namespace {

using detector::EventModifier;
using detector::ParamContext;

bool WaitUntil(const std::function<bool()>& pred,
               std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

detector::PrimitiveOccurrence Occ(const std::string& method, int v) {
  detector::PrimitiveOccurrence occ;
  occ.class_name = "Order";
  occ.oid = 1;
  occ.modifier = EventModifier::kEnd;
  occ.method_signature = method;
  occ.txn = 1;
  auto params = std::make_shared<detector::ParamList>();
  params->Insert("v", oodb::Value::Int(v));
  occ.params = params;
  return occ;
}

RemoteGedClient::Options FastClient(int port, const std::string& app,
                                    std::uint64_t seed = 0x5eed) {
  RemoteGedClient::Options o;
  o.port = port;
  o.app_name = app;
  o.backoff_base = std::chrono::milliseconds(10);
  o.backoff_max = std::chrono::milliseconds(80);
  o.request_timeout = std::chrono::milliseconds(500);
  o.jitter_seed = seed;
  return o;
}

/// Walks every delivered push back to the notify-encode span that
/// originated it, hop by hop: remote_parent when the causal parent crossed
/// the wire, the local parent otherwise. Both roles share one tracer here,
/// so the whole cross-process chain resolves inside a single snapshot —
/// the in-process equivalent of tools/merge_traces.py --check.
struct ChainCheck {
  int pushes = 0;     // client-side push-decode spans seen
  int connected = 0;  // of those, how many chain back to a notify encode
};

ChainCheck CheckPushChains(const std::vector<obs::Span>& spans) {
  std::map<std::uint64_t, const obs::Span*> by_id;
  for (const obs::Span& s : spans) by_id[s.id] = &s;
  ChainCheck check;
  for (const obs::Span& s : spans) {
    if (s.kind != obs::SpanKind::kNetFrameDecode) continue;
    if (s.label.rfind("push ", 0) != 0) continue;
    ++check.pushes;
    const obs::Span* cur = &s;
    for (int hops = 0; hops < 64 && cur != nullptr; ++hops) {
      if (cur->kind == obs::SpanKind::kNetFrameEncode &&
          cur->label.rfind("notify ", 0) == 0) {
        if (cur->trace == s.trace && s.trace != 0) ++check.connected;
        break;
      }
      const std::uint64_t up =
          cur->remote_parent != 0 ? cur->remote_parent : cur->parent;
      const auto it = by_id.find(up);
      cur = it == by_id.end() ? nullptr : it->second;
    }
  }
  return check;
}

class NetChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Instance().DisableAll(); }

  /// One matrix cell: connect, then arm `spec` at `failpoint` and keep
  /// driving events until detections flow again. `arm_before_start` covers
  /// faults on the dial path itself.
  void RunCase(const std::string& failpoint, const std::string& spec,
               bool arm_before_start) {
    SCOPED_TRACE(failpoint + "=" + spec);
    ged::GlobalEventDetector ged;
    EventBusServer server(&ged);
    EventBusServer::Options sopts;
    sopts.retry_after_ms = 5;
    ASSERT_TRUE(server.Start(sopts).ok());

    RemoteGedClient client(FastClient(server.port(), "chaos"));
    if (arm_before_start) {
      ASSERT_TRUE(
          FailPointRegistry::Instance().Enable(failpoint, spec).ok());
    }
    ASSERT_TRUE(client.Start().ok());
    ASSERT_TRUE(client.WaitConnected(std::chrono::seconds(10)));

    std::atomic<std::uint64_t> received{0};
    ASSERT_TRUE(client
                    .DefineGlobalPrimitive("g_chaos", "Order",
                                           EventModifier::kEnd, "void f()")
                    .ok());
    ASSERT_TRUE(client
                    .Subscribe("g_chaos", ParamContext::kRecent,
                               [&](const std::string&,
                                   const detector::Occurrence&) {
                                 received.fetch_add(1);
                               })
                    .ok());
    if (!arm_before_start) {
      ASSERT_TRUE(
          FailPointRegistry::Instance().Enable(failpoint, spec).ok());
    }

    // At-most-once delivery means individual events may vanish into the
    // injected fault; the contract under test is that the *pipeline*
    // recovers. Keep notifying until a healthy batch of detections lands.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (received.load() < 20) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "pipeline did not recover; pushes=" << received.load()
          << " client disconnects=" << client.stats().disconnects
          << " last_error=" << client.last_error();
      (void)client.Notify(Occ("void f()", 1));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    EXPECT_TRUE(server.running());
    EXPECT_TRUE(client.connected());
    client.Stop();
    server.Stop();
    FailPointRegistry::Instance().DisableAll();
  }
};

TEST_F(NetChaosTest, ServerReadError) {
  RunCase("net.server.read", "error(hit=3,count=1)", false);
}

TEST_F(NetChaosTest, ServerWriteTorn) {
  RunCase("net.server.write", "torn(hit=2,count=1)", false);
}

TEST_F(NetChaosTest, ClientWriteError) {
  RunCase("net.client.write", "error(hit=4,count=1)", false);
}

TEST_F(NetChaosTest, ClientWriteTorn) {
  RunCase("net.client.write", "torn(hit=3,count=1)", false);
}

TEST_F(NetChaosTest, ClientReadError) {
  RunCase("net.client.read", "error(hit=2,count=1)", false);
}

TEST_F(NetChaosTest, ConnectRefusedThenBackoffRecovers) {
  RunCase("net.connect", "error(count=3)", true);
}

TEST_F(NetChaosTest, DispatcherDropsAreAtMostOnce) {
  RunCase("net.server.dispatch", "error(prob=0.2)", false);
}

TEST_F(NetChaosTest, ServerRestartClientRedialsAndReplaysJournal) {
  ged::GlobalEventDetector ged;
  auto server = std::make_unique<EventBusServer>(&ged);
  ASSERT_TRUE(server->Start({}).ok());
  const int port = server->port();

  RemoteGedClient client(FastClient(port, "persistent"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.WaitConnected(std::chrono::seconds(10)));
  std::atomic<std::uint64_t> received{0};
  ASSERT_TRUE(client
                  .DefineGlobalPrimitive("g_restart", "Order",
                                         EventModifier::kEnd, "void f()")
                  .ok());
  ASSERT_TRUE(
      client
          .Subscribe("g_restart", ParamContext::kRecent,
                     [&](const std::string&, const detector::Occurrence&) {
                       received.fetch_add(1);
                     })
          .ok());
  ASSERT_TRUE(client.Notify(Occ("void f()", 1)).ok());
  ASSERT_TRUE(WaitUntil([&] { return received.load() >= 1; },
                        std::chrono::seconds(10)));

  // Hard server death: the client is left dialing a genuinely refused
  // port (real ECONNREFUSED, not a failpoint).
  server->Stop();
  ASSERT_TRUE(WaitUntil([&] { return !client.connected(); },
                        std::chrono::seconds(10)));

  // Resurrect on the same port. The client must redial with backoff,
  // re-register, replay its journal, and detections must flow again
  // without any help from the application.
  server = std::make_unique<EventBusServer>(&ged);
  EventBusServer::Options opts;
  opts.port = port;
  ASSERT_TRUE(server->Start(opts).ok());
  ASSERT_TRUE(client.WaitConnected(std::chrono::seconds(20)));
  EXPECT_GE(client.stats().journal_replays, 2u);  // define + subscribe

  const std::uint64_t before = received.load();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (received.load() <= before) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    (void)client.Notify(Occ("void f()", 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  client.Stop();
  server->Stop();
}

TEST_F(NetChaosTest, OverloadDegradesHealthzAndRecovers) {
  core::ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  ged::GlobalEventDetector ged;
  EventBusServer server(&ged);
  EventBusServer::Options sopts;
  sopts.admission_capacity = 8;
  sopts.retry_after_ms = 5;
  ASSERT_TRUE(server.Start(sopts).ok());
  db.AttachEventBusServer(&server);

  obs::Watchdog::Options wopts;
  wopts.interval = std::chrono::milliseconds(20);
  ASSERT_TRUE(db.StartMonitoring(/*port=*/-1, wopts).ok());

  // Stall the dispatcher so the admission queue passes its high-water mark.
  ASSERT_TRUE(FailPointRegistry::Instance()
                  .Enable("net.server.dispatch", "delay(ms=30)")
                  .ok());

  RemoteGedClient client(FastClient(server.port(), "flooder"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.WaitConnected(std::chrono::seconds(10)));

  // Flood until the watchdog reports degraded — not unhealthy, not dead.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool degraded_seen = false;
  while (!degraded_seen) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "overload never degraded /healthz; sheds=" << server.stats().sheds;
    for (int i = 0; i < 32; ++i) (void)client.Notify(Occ("void f()", i));
    degraded_seen =
        db.watchdog()->health() == obs::HealthState::kDegraded;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  int http_status = 0;
  const std::string verdict = db.HealthJson(&http_status);
  if (db.watchdog()->health() == obs::HealthState::kDegraded) {
    EXPECT_EQ(http_status, 503);
    EXPECT_NE(verdict.find("net_overload"), std::string::npos) << verdict;
  }
  EXPECT_TRUE(server.running()) << "overload must shed, never kill the daemon";
  EXPECT_GE(server.stats().sheds, 1u);

  // Recovery: stop the flood, disarm the stall; the queue drains and the
  // verdict returns to healthy with no restart.
  FailPointRegistry::Instance().DisableAll();
  EXPECT_TRUE(WaitUntil(
      [&] {
        return !server.overloaded() &&
               db.watchdog()->health() == obs::HealthState::kHealthy;
      },
      std::chrono::seconds(20)));
  db.HealthJson(&http_status);
  EXPECT_EQ(http_status, 200);

  client.Stop();
  db.AttachEventBusServer(nullptr);
  server.Stop();
  db.StopMonitoring();
  ASSERT_TRUE(db.Close().ok());
}

// Supersede under tracing: a second connection stealing the app name dooms
// the first session, and every push delivered on the surviving session
// still carries a trace chain that walks back to its notify encode. The
// superseded client is parked on a long backoff so the two connections
// don't keep dooming each other.
TEST_F(NetChaosTest, TracedSupersedeKeepsTraceChainsConnected) {
  obs::SpanTracer tracer(1 << 16);
  tracer.set_mode(obs::TraceMode::kFull);
  ged::GlobalEventDetector ged;
  ged.set_span_tracer(&tracer);
  EventBusServer server(&ged);
  server.set_span_tracer(&tracer);
  ASSERT_TRUE(server.Start({}).ok());

  RemoteGedClient::Options fopts = FastClient(server.port(), "traced");
  fopts.backoff_base = std::chrono::seconds(60);  // stay down once doomed
  fopts.backoff_max = std::chrono::seconds(60);
  RemoteGedClient first(fopts);
  first.set_span_tracer(&tracer);
  ASSERT_TRUE(first.Start().ok());
  ASSERT_TRUE(first.WaitConnected(std::chrono::seconds(10)));

  RemoteGedClient client(FastClient(server.port(), "traced", 0xabcd));
  client.set_span_tracer(&tracer);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.WaitConnected(std::chrono::seconds(10)));
  ASSERT_TRUE(WaitUntil(
      [&] { return server.stats().superseded_sessions >= 1; },
      std::chrono::seconds(10)));

  std::atomic<std::uint64_t> received{0};
  ASSERT_TRUE(client
                  .DefineGlobalPrimitive("g_traced", "Order",
                                         EventModifier::kEnd, "void f()")
                  .ok());
  ASSERT_TRUE(
      client
          .Subscribe("g_traced", ParamContext::kRecent,
                     [&](const std::string&, const detector::Occurrence&) {
                       received.fetch_add(1);
                     })
          .ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (received.load() < 5) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    (void)client.Notify(Occ("void f()", 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // The push handler bumps `received` before its decode span commits to
  // the ring, so poll until the spans land rather than racing the worker.
  ChainCheck check;
  ASSERT_TRUE(WaitUntil(
      [&] {
        check = CheckPushChains(tracer.Snapshot());
        return check.pushes >= 5;
      },
      std::chrono::seconds(10)));
  EXPECT_EQ(check.connected, check.pushes)
      << "a delivered push lost its causal chain across the supersede";

  client.Stop();
  first.Stop();
  server.Stop();
}

// Shed/retry under tracing: the admission queue sheds NOTIFY traffic with
// RETRY_LATER while the dispatcher is stalled; after the stall clears,
// deliveries resume and every push that made it through — during or after
// the overload — still has a fully connected trace chain. Shed events
// simply have no push; they must not leave half-built trees behind.
TEST_F(NetChaosTest, TracedShedRetryKeepsTraceChainsConnected) {
  obs::SpanTracer tracer(1 << 16);
  tracer.set_mode(obs::TraceMode::kFull);
  ged::GlobalEventDetector ged;
  ged.set_span_tracer(&tracer);
  EventBusServer server(&ged);
  server.set_span_tracer(&tracer);
  EventBusServer::Options sopts;
  sopts.admission_capacity = 4;
  sopts.retry_after_ms = 5;
  ASSERT_TRUE(server.Start(sopts).ok());

  RemoteGedClient client(FastClient(server.port(), "traced_shed"));
  client.set_span_tracer(&tracer);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.WaitConnected(std::chrono::seconds(10)));

  std::atomic<std::uint64_t> received{0};
  ASSERT_TRUE(client
                  .DefineGlobalPrimitive("g_shed", "Order",
                                         EventModifier::kEnd, "void f()")
                  .ok());
  ASSERT_TRUE(
      client
          .Subscribe("g_shed", ParamContext::kRecent,
                     [&](const std::string&, const detector::Occurrence&) {
                       received.fetch_add(1);
                     })
          .ok());

  // Stall the dispatcher and flood until the server sheds at least once.
  ASSERT_TRUE(FailPointRegistry::Instance()
                  .Enable("net.server.dispatch", "delay(ms=30)")
                  .ok());
  const auto flood_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (client.stats().sheds_received < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), flood_deadline)
        << "overload never shed; server sheds=" << server.stats().sheds;
    for (int i = 0; i < 16; ++i) (void)client.Notify(Occ("void f()", i));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Clear the stall, let the queue drain, then push one more event through.
  FailPointRegistry::Instance().DisableAll();
  ASSERT_TRUE(WaitUntil([&] { return !server.overloaded(); },
                        std::chrono::seconds(20)));
  const std::uint64_t before = received.load();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (received.load() <= before) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    (void)client.Notify(Occ("void f()", 7));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // The push handler bumps `received` before its decode span commits to
  // the ring, so poll until the spans land rather than racing the worker.
  ChainCheck check;
  ASSERT_TRUE(WaitUntil(
      [&] {
        check = CheckPushChains(tracer.Snapshot());
        return check.pushes >= 1;
      },
      std::chrono::seconds(10)));
  EXPECT_EQ(check.connected, check.pushes)
      << "a delivered push lost its causal chain across shed/retry";
  EXPECT_GE(client.stats().sheds_received, 1u);

  client.Stop();
  server.Stop();
}

// The acceptance swarm: ≥50 concurrent clients while probabilistic faults
// chew on every wire path. The daemon must survive, shed under pressure,
// and every client must end the test reconnected and receiving pushes.
TEST(NetChaosSwarm, FiftyClientsSurviveInjectedFaults) {
  constexpr int kClients = 50;

  ged::GlobalEventDetector ged;
  EventBusServer server(&ged);
  EventBusServer::Options sopts;
  sopts.max_sessions = kClients + 10;
  sopts.admission_capacity = 128;
  sopts.retry_after_ms = 5;
  ASSERT_TRUE(server.Start(sopts).ok());

  struct Slot {
    std::unique_ptr<RemoteGedClient> client;
    std::shared_ptr<std::atomic<std::uint64_t>> received =
        std::make_shared<std::atomic<std::uint64_t>>(0);
    std::string event;
  };
  std::vector<Slot> slots(kClients);
  for (int i = 0; i < kClients; ++i) {
    slots[i].event = "g_swarm_" + std::to_string(i);
    slots[i].client = std::make_unique<RemoteGedClient>(FastClient(
        server.port(), "swarm_" + std::to_string(i),
        /*seed=*/0x5eed + static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(slots[i].client->Start().ok());
  }
  for (auto& slot : slots) {
    ASSERT_TRUE(slot.client->WaitConnected(std::chrono::seconds(20)));
  }

  // Control-plane setup with a retry loop: a fault can eat any individual
  // request, but once acked the journal owns it.
  auto establish = [&](Slot& slot) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!slot.client
                ->DefineGlobalPrimitive(slot.event, "Order",
                                        EventModifier::kEnd, "void f()")
                .ok()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    auto received = slot.received;
    while (!slot.client
                ->Subscribe(slot.event, ParamContext::kRecent,
                            [received](const std::string&,
                                       const detector::Occurrence&) {
                              received->fetch_add(1);
                            })
                .ok()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  };
  for (auto& slot : slots) establish(slot);

  // Chaos phase: probabilistic faults on every wire path while all fifty
  // clients stream events.
  auto& registry = FailPointRegistry::Instance();
  ASSERT_TRUE(registry.Enable("net.server.read", "error(prob=0.003)").ok());
  ASSERT_TRUE(registry.Enable("net.server.write", "torn(prob=0.003)").ok());
  ASSERT_TRUE(registry.Enable("net.client.write", "error(prob=0.003)").ok());
  ASSERT_TRUE(registry.Enable("net.client.read", "error(prob=0.003)").ok());

  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < kClients; ++i) {
      (void)slots[i].client->Notify(Occ("void f()", round));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(server.running()) << "the daemon must ride out the chaos";

  // Calm phase: disarm everything; every client — including each one that
  // was disconnected mid-stream — must reconnect and resume receiving
  // detections of its own event.
  registry.DisableAll();
  for (auto& slot : slots) {
    ASSERT_TRUE(slot.client->WaitConnected(std::chrono::seconds(30)))
        << "a client failed to reconnect after the faults were cleared";
  }
  for (int i = 0; i < kClients; ++i) {
    const std::uint64_t before = slots[i].received->load();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (slots[i].received->load() <= before) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "client " << i << " stopped receiving detections";
      (void)slots[i].client->Notify(Occ("void f()", 999));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  EXPECT_TRUE(server.running());
  std::uint64_t total_disconnects = 0;
  for (auto& slot : slots) {
    total_disconnects += slot.client->stats().disconnects;
    slot.client->Stop();
  }
  server.Stop();
  SUCCEED() << "swarm survived; client disconnects=" << total_disconnects;
}

}  // namespace
}  // namespace sentinel::net
