#include "storage/buffer_pool.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "storage/wal.h"

namespace sentinel::storage {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("sentinel_bp_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".db"))
                .string();
    std::remove(path_.c_str());
    ASSERT_TRUE(disk_.Open(path_).ok());
  }

  void TearDown() override {
    (void)disk_.Close();
    std::remove(path_.c_str());
  }

  std::string path_;
  DiskManager disk_;
};

TEST_F(BufferPoolTest, NewPageIsPinnedAndDirty) {
  BufferPool pool(&disk_, 4);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)->pin_count(), 1);
  EXPECT_TRUE((*page)->is_dirty());
  EXPECT_TRUE(pool.UnpinPage((*page)->page_id(), true).ok());
}

TEST_F(BufferPoolTest, FetchHitsCache) {
  BufferPool pool(&disk_, 4);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId id = (*page)->page_id();
  ASSERT_TRUE(pool.UnpinPage(id, true).ok());
  auto again = pool.FetchPage(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *page);  // same frame
  EXPECT_GE(pool.hit_count(), 1u);
  ASSERT_TRUE(pool.UnpinPage(id, false).ok());
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  BufferPool pool(&disk_, 2);
  // Create 3 pages, writing a marker into each; capacity 2 forces eviction.
  PageId ids[3];
  for (int i = 0; i < 3; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok()) << page.status();
    ids[i] = (*page)->page_id();
    (*page)->payload()[0] = static_cast<std::uint8_t>(0xA0 + i);
    ASSERT_TRUE(pool.UnpinPage(ids[i], true).ok());
  }
  // All three readable with their markers intact.
  for (int i = 0; i < 3; ++i) {
    auto page = pool.FetchPage(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->payload()[0], 0xA0 + i);
    ASSERT_TRUE(pool.UnpinPage(ids[i], false).ok());
  }
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  BufferPool pool(&disk_, 2);
  auto p1 = pool.NewPage();
  auto p2 = pool.NewPage();
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  auto p3 = pool.NewPage();
  EXPECT_EQ(p3.status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(pool.UnpinPage((*p1)->page_id(), false).ok());
  auto p4 = pool.NewPage();
  EXPECT_TRUE(p4.ok());
}

TEST_F(BufferPoolTest, UnpinErrors) {
  BufferPool pool(&disk_, 2);
  EXPECT_FALSE(pool.UnpinPage(99, false).ok());
  auto p = pool.NewPage();
  ASSERT_TRUE(p.ok());
  PageId id = (*p)->page_id();
  ASSERT_TRUE(pool.UnpinPage(id, false).ok());
  EXPECT_FALSE(pool.UnpinPage(id, false).ok());  // already unpinned
}

TEST_F(BufferPoolTest, FlushAllPersistsAcrossReopen) {
  {
    BufferPool pool(&disk_, 4);
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    (*page)->payload()[10] = 0x5A;
    ASSERT_TRUE(pool.UnpinPage((*page)->page_id(), true).ok());
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  ASSERT_TRUE(disk_.Close().ok());
  DiskManager disk2;
  ASSERT_TRUE(disk2.Open(path_).ok());
  BufferPool pool2(&disk2, 4);
  auto page = pool2.FetchPage(1);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)->payload()[10], 0x5A);
  ASSERT_TRUE(pool2.UnpinPage(1, false).ok());
  ASSERT_TRUE(disk2.Close().ok());
}

}  // namespace
}  // namespace sentinel::storage
