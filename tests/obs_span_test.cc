// Causal span tracer tests: mode gating (off / flight-only / full), span
// tree integrity across the detector → scheduler → nested-txn pipeline,
// Chrome trace export shape, and postmortem JSON structure.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/active_database.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"

namespace sentinel {
namespace {

using core::ActiveDatabase;
using detector::EventModifier;
using obs::Span;
using obs::SpanKind;
using obs::TraceMode;

/// Structural JSON check: braces/brackets balance outside of strings and the
/// document is one value. Enough to catch truncated or mis-comma'd output
/// without pulling in a JSON library.
bool JsonBalanced(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string;
}

/// Declares submit/confirm primitives, SEQ(submit; confirm), and an
/// immediate rule (with a condition so condition spans appear) on `db`.
void InstallPipeline(ActiveDatabase* db) {
  auto submit = db->DeclareEvent("ev_submit", "Order", EventModifier::kEnd,
                                 "void submit()");
  auto confirm = db->DeclareEvent("ev_confirm", "Order", EventModifier::kEnd,
                                  "void confirm()");
  ASSERT_TRUE(submit.ok());
  ASSERT_TRUE(confirm.ok());
  ASSERT_TRUE(db->detector()->DefineSeq("ev_seq", *submit, *confirm).ok());
  ASSERT_TRUE(db->rule_manager()
                  ->DefineRule(
                      "seq_rule", "ev_seq",
                      [](const rules::RuleContext&) { return true; },
                      [](const rules::RuleContext&) {},
                      rules::RuleManager::RuleOptions{})
                  .ok());
}

void RunPipelineTxn(ActiveDatabase* db, storage::TxnId* txn_out) {
  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  db->NotifyMethod("Order", 1, EventModifier::kEnd, "void submit()", nullptr,
                   *txn);
  db->NotifyMethod("Order", 1, EventModifier::kEnd, "void confirm()", nullptr,
                   *txn);
  ASSERT_TRUE(db->Commit(*txn).ok());
  *txn_out = *txn;
}

TEST(ObsSpanTest, TracerOffRecordsNothing) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  db.span_tracer()->set_mode(TraceMode::kOff);
  InstallPipeline(&db);
  storage::TxnId txn;
  RunPipelineTxn(&db, &txn);
  EXPECT_EQ(db.span_tracer()->recorded(), 0u);
  EXPECT_EQ(db.flight_recorder()->recorded(), 0u);
  EXPECT_TRUE(db.span_tracer()->Snapshot().empty());
  ASSERT_TRUE(db.Close().ok());
}

TEST(ObsSpanTest, FlightModeSkipsHotKindsButKeepsLastSpans) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  // kFlightOnly is the default mode.
  EXPECT_EQ(db.span_tracer()->mode(), TraceMode::kFlightOnly);
  InstallPipeline(&db);
  storage::TxnId txn;
  RunPipelineTxn(&db, &txn);
  // The flight recorder saw spans (txn, subtxn, condition/action)...
  EXPECT_GT(db.flight_recorder()->recorded(), 0u);
  // ...but never the per-event hot kinds, and nothing went to the rings.
  for (const Span& span : db.flight_recorder()->Snapshot()) {
    EXPECT_NE(span.kind, SpanKind::kNotify);
    EXPECT_NE(span.kind, SpanKind::kCompositeDetect);
  }
  EXPECT_TRUE(db.span_tracer()->Snapshot().empty());
  ASSERT_TRUE(db.Close().ok());
}

TEST(ObsSpanTest, SpanTreeIntegrityFullTrace) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  db.span_tracer()->set_mode(TraceMode::kFull);
  InstallPipeline(&db);
  storage::TxnId txn;
  RunPipelineTxn(&db, &txn);

  std::vector<Span> spans = db.span_tracer()->Snapshot();
  std::map<std::uint64_t, Span> by_id;
  for (const Span& span : spans) by_id[span.id] = span;

  // The acceptance chain: subtxn → composite_detect → notify → txn.
  const Span* seq_subtxn = nullptr;
  for (const Span& span : spans) {
    if (span.kind == SpanKind::kSubTxn && span.label == "seq_rule" &&
        span.txn == txn) {
      seq_subtxn = &by_id[span.id];
    }
  }
  ASSERT_NE(seq_subtxn, nullptr) << "no subtxn span for seq_rule";
  ASSERT_TRUE(by_id.count(seq_subtxn->parent)) << "dangling subtxn parent";
  const Span& detect = by_id[seq_subtxn->parent];
  EXPECT_EQ(detect.kind, SpanKind::kCompositeDetect);
  EXPECT_EQ(detect.label, "ev_seq");
  ASSERT_TRUE(by_id.count(detect.parent)) << "dangling detect parent";
  const Span& notify = by_id[detect.parent];
  EXPECT_EQ(notify.kind, SpanKind::kNotify);
  ASSERT_TRUE(by_id.count(notify.parent)) << "dangling notify parent";
  const Span& txn_span = by_id[notify.parent];
  EXPECT_EQ(txn_span.kind, SpanKind::kTxn);
  EXPECT_EQ(txn_span.txn, txn);

  // Condition and action spans hang off the subtxn span.
  bool saw_condition = false, saw_action = false;
  for (const Span& span : spans) {
    if (span.parent != seq_subtxn->id) continue;
    saw_condition |= span.kind == SpanKind::kCondition;
    saw_action |= span.kind == SpanKind::kAction;
  }
  EXPECT_TRUE(saw_condition);
  EXPECT_TRUE(saw_action);

  // Tree invariants: every non-txn span of this transaction has a live
  // parent, and no parent edge crosses a transaction boundary.
  for (const Span& span : spans) {
    if (span.txn != txn || span.kind == SpanKind::kTxn) continue;
    EXPECT_NE(span.parent, 0u) << "rootless " << obs::SpanKindToString(span.kind)
                               << " span '" << span.label << "'";
    auto parent = by_id.find(span.parent);
    if (parent != by_id.end() &&
        parent->second.txn != storage::kInvalidTxnId) {
      EXPECT_EQ(parent->second.txn, span.txn)
          << "span '" << span.label << "' parented across transactions";
    }
  }
  ASSERT_TRUE(db.Close().ok());
}

TEST(ObsSpanTest, SecondTransactionDoesNotInheritFirst) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  db.span_tracer()->set_mode(TraceMode::kFull);
  InstallPipeline(&db);
  storage::TxnId t1, t2;
  RunPipelineTxn(&db, &t1);
  RunPipelineTxn(&db, &t2);
  ASSERT_NE(t1, t2);

  std::map<std::uint64_t, Span> by_id;
  for (const Span& span : db.span_tracer()->Snapshot()) by_id[span.id] = span;
  for (const auto& [id, span] : by_id) {
    (void)id;
    auto parent = by_id.find(span.parent);
    if (parent == by_id.end()) continue;
    if (span.txn == storage::kInvalidTxnId ||
        parent->second.txn == storage::kInvalidTxnId) {
      continue;
    }
    EXPECT_EQ(parent->second.txn, span.txn);
  }
  ASSERT_TRUE(db.Close().ok());
}

TEST(ObsSpanTest, ExportChromeTraceWellFormed) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  db.span_tracer()->set_mode(TraceMode::kFull);
  InstallPipeline(&db);
  storage::TxnId txn;
  RunPipelineTxn(&db, &txn);

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("sentinel_span_trace_" + std::to_string(::getpid()) + ".json"))
          .string();
  ASSERT_TRUE(db.ExportTrace(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  std::filesystem::remove(path);

  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // process names
  EXPECT_NE(json.find("\"pid\":" + std::to_string(txn)), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"composite_detect\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"subtxn\""), std::string::npos);
  ASSERT_TRUE(db.Close().ok());
}

TEST(ObsSpanTest, PostmortemJsonStructure) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  InstallPipeline(&db);
  storage::TxnId txn;
  RunPipelineTxn(&db, &txn);

  // With a transaction open, the postmortem lists it as active.
  auto open = db.Begin();
  ASSERT_TRUE(open.ok());
  const std::string json = db.PostmortemJson("test_reason", *open);
  ASSERT_TRUE(db.Abort(*open).ok());

  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("\"reason\":\"test_reason\""), std::string::npos);
  EXPECT_NE(json.find("\"victim_txn\":" + std::to_string(*open)),
            std::string::npos);
  EXPECT_NE(json.find("\"active_txns\""), std::string::npos);
  EXPECT_NE(json.find("\"txn\":" + std::to_string(*open)), std::string::npos);
  EXPECT_NE(json.find("\"subtxns\""), std::string::npos);
  EXPECT_NE(json.find("\"failpoints\""), std::string::npos);
  EXPECT_NE(json.find("\"last_spans\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler\""), std::string::npos);
  ASSERT_TRUE(db.Close().ok());
}

TEST(ObsSpanTest, StatsJsonCarriesSpanSection) {
  ActiveDatabase db;
  ASSERT_TRUE(db.OpenInMemory().ok());
  InstallPipeline(&db);
  storage::TxnId txn;
  RunPipelineTxn(&db, &txn);
  const std::string json = db.StatsJson();
  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("\"span_trace\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"flight\""), std::string::npos);
  ASSERT_TRUE(db.Close().ok());
}

TEST(ObsSpanTest, StatsJsonCarriesStorageSectionWhenPersistent) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("sentinel_span_stats_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    ActiveDatabase db;
    ASSERT_TRUE(db.Open(dir + "/db").ok());
    auto txn = db.Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db.database()->classes()->Register(oodb::ClassDef("Order", ""))
                    .ok());
    ASSERT_TRUE(db.CreateObject(*txn, "Order", "o1").ok());
    ASSERT_TRUE(db.Commit(*txn).ok());
    const std::string json = db.StatsJson();
    EXPECT_TRUE(JsonBalanced(json));
    EXPECT_NE(json.find("\"storage\""), std::string::npos);
    EXPECT_NE(json.find("\"buffer_pool\""), std::string::npos);
    EXPECT_NE(json.find("\"wal\""), std::string::npos);
    EXPECT_NE(json.find("\"lock_manager\""), std::string::npos);
    EXPECT_NE(json.find("\"fsync_ns\""), std::string::npos);
    ASSERT_TRUE(db.Close().ok());
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// Net wire kinds fire once per frame, so flight-recorder mode must skip
// them the same way it skips notify/composite_detect; kFull records them.
TEST(ObsSpanTest, NetSpanKindsGatedByMode) {
  obs::SpanTracer tracer;
  const SpanKind net_kinds[] = {
      SpanKind::kNetFrameEncode, SpanKind::kNetFrameDecode,
      SpanKind::kNetAdmissionWait, SpanKind::kNetOutboundWait,
      SpanKind::kNetWrite};
  tracer.set_mode(TraceMode::kFlightOnly);
  for (SpanKind kind : net_kinds) {
    EXPECT_FALSE(tracer.enabled_for(kind)) << obs::SpanKindToString(kind);
  }
  EXPECT_TRUE(tracer.enabled_for(SpanKind::kSubTxn));
  tracer.set_mode(TraceMode::kFull);
  for (SpanKind kind : net_kinds) {
    EXPECT_TRUE(tracer.enabled_for(kind)) << obs::SpanKindToString(kind);
  }
  tracer.set_mode(TraceMode::kOff);
  for (SpanKind kind : net_kinds) {
    EXPECT_FALSE(tracer.enabled_for(kind)) << obs::SpanKindToString(kind);
  }
}

// The cross-process linkage primitives: a scope annotated with a remote
// parent, a timed span recorded with an explicit parent (the queue-wait
// shape), and a child scope resolving its parent from the enclosing scope.
TEST(ObsSpanTest, RemoteAnnotationAndTimedSpanParents) {
  obs::SpanTracer tracer;
  tracer.set_mode(TraceMode::kFull);

  std::uint64_t decode_id = 0;
  std::uint64_t child_id = 0;
  {
    obs::SpanScope decode;
    decode.Start(&tracer, SpanKind::kNetFrameDecode, storage::kInvalidTxnId,
                 "push g_e");
    decode.AnnotateRemote(/*trace=*/0xFEED, /*remote_parent=*/314);
    decode_id = decode.id();
    // A span opened inside the scope parents to it via the scope stack —
    // the push-handler condition/action path.
    obs::SpanScope child;
    child.Start(&tracer, SpanKind::kAction, storage::kInvalidTxnId, "handler");
    child_id = child.id();
    child.End();
    decode.End();
  }
  const std::uint64_t wait_id = tracer.RecordTimedSpan(
      SpanKind::kNetAdmissionWait, /*start_ns=*/100, /*end_ns=*/250,
      storage::kInvalidTxnId, "admission", /*parent=*/decode_id,
      /*trace=*/0xFEED, /*remote_parent=*/0);

  std::map<std::uint64_t, Span> by_id;
  for (const Span& span : tracer.Snapshot()) by_id[span.id] = span;
  ASSERT_TRUE(by_id.count(decode_id));
  ASSERT_TRUE(by_id.count(child_id));
  ASSERT_TRUE(by_id.count(wait_id));
  EXPECT_EQ(by_id[decode_id].trace, 0xFEEDu);
  EXPECT_EQ(by_id[decode_id].remote_parent, 314u);
  EXPECT_EQ(by_id[child_id].parent, decode_id);
  EXPECT_EQ(by_id[wait_id].parent, decode_id);
  EXPECT_EQ(by_id[wait_id].trace, 0xFEEDu);
  EXPECT_EQ(by_id[wait_id].start_ns, 100u);
  EXPECT_EQ(by_id[wait_id].end_ns, 250u);
}

// The export carries the merge metadata and the distributed-trace args the
// merge tool resolves remote parents by.
TEST(ObsSpanTest, ExportMetaStampsOtherData) {
  obs::SpanTracer tracer;
  tracer.set_mode(TraceMode::kFull);
  {
    obs::SpanScope scope;
    scope.Start(&tracer, SpanKind::kNetFrameEncode, storage::kInvalidTxnId,
                "notify Order::f");
    scope.AnnotateRemote(/*trace=*/0xBEEF, /*remote_parent=*/0);
    scope.End();
  }
  obs::SpanTracer::ExportMeta meta;
  meta.process = "client:inventory";
  meta.clock_offset_ns = -12345;
  const std::string json = tracer.ChromeTraceJson(meta);
  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"process\":\"client:inventory\""), std::string::npos);
  EXPECT_NE(json.find("\"clock_offset_ns\":-12345"), std::string::npos);
  EXPECT_NE(json.find("\"base_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\":48879"), std::string::npos);  // 0xBEEF
  EXPECT_NE(json.find("\"cat\":\"net_frame_encode\""), std::string::npos);

  // The meta-less export still carries otherData (offset 0) so merge input
  // shape is uniform.
  const std::string plain = tracer.ChromeTraceJson();
  EXPECT_NE(plain.find("\"clock_offset_ns\":0"), std::string::npos);
}

TEST(ObsSpanTest, FlightRecorderRingKeepsLastN) {
  obs::FlightRecorder recorder(/*capacity=*/4);
  obs::SpanTracer tracer;
  tracer.set_flight_recorder(&recorder);
  tracer.set_mode(TraceMode::kFlightOnly);
  for (int i = 0; i < 10; ++i) {
    obs::SpanScope scope;
    scope.Start(&tracer, SpanKind::kAction, storage::kInvalidTxnId,
                "op " + std::to_string(i));
    scope.End();
  }
  std::vector<Span> last = recorder.Snapshot();
  ASSERT_EQ(last.size(), 4u);
  EXPECT_EQ(last.front().label, "op 6");  // oldest surviving
  EXPECT_EQ(last.back().label, "op 9");   // newest
  EXPECT_EQ(recorder.recorded(), 10u);
}

// The kAbortTop contingency dooms the triggering transaction — and, with
// $SENTINEL_POSTMORTEM_DIR set, automatically drops a postmortem file that
// names the reason and parses as JSON.
TEST(ObsSpanTest, AbortTopContingencyEmitsPostmortem) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("sentinel_abort_postmortem_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ASSERT_EQ(::setenv("SENTINEL_POSTMORTEM_DIR", dir.c_str(), 1), 0);

  {
    ActiveDatabase db;
    ActiveDatabase::Options options;
    options.scheduler.contingency = rules::ContingencyPolicy::kAbortTop;
    ASSERT_TRUE(db.OpenInMemory(options).ok());
    auto boom = db.detector()->DefineExplicit("boom");
    ASSERT_TRUE(boom.ok());
    ASSERT_TRUE(db.rule_manager()
                    ->DefineRule("exploding_rule", "boom", nullptr,
                                 [](const rules::RuleContext&) {
                                   throw std::runtime_error("rule failure");
                                 })
                    .ok());
    auto txn = db.Begin();
    ASSERT_TRUE(txn.ok());
    // NotifyMethod drains immediate firings, so the contingency (and the
    // postmortem dump) happens inside this call.
    ASSERT_TRUE(db.RaiseEvent("boom", nullptr, *txn).ok());
    EXPECT_GT(db.scheduler()->abort_top_count(), 0u);
    EXPECT_GT(db.flight_recorder()->dumps(), 0u);
    ASSERT_TRUE(db.Close().ok());
  }
  ASSERT_EQ(::unsetenv("SENTINEL_POSTMORTEM_DIR"), 0);

  std::string postmortem;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    if (buf.str().find("\"reason\":\"abort_top\"") != std::string::npos) {
      postmortem = buf.str();
    }
  }
  ASSERT_FALSE(postmortem.empty()) << "no abort_top postmortem written";
  EXPECT_TRUE(JsonBalanced(postmortem));
  EXPECT_NE(postmortem.find("\"victim_txn\""), std::string::npos);
  EXPECT_NE(postmortem.find("\"last_spans\""), std::string::npos);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(ObsSpanTest, WritePostmortemHonorsExplicitPath) {
  obs::FlightRecorder recorder;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("sentinel_postmortem_" + std::to_string(::getpid()) + ".json"))
          .string();
  auto written = recorder.WritePostmortem("{\"reason\":\"unit\"}", path);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(*written, path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "{\"reason\":\"unit\"}\n");
  EXPECT_EQ(recorder.dumps(), 1u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sentinel
