// Crash-recovery fuzz: random interleavings of inserts/updates/deletes across
// committed and uncommitted transactions, followed by a simulated crash
// (unflushed pages lost, WAL survives) and reopen. Invariant: exactly the
// committed state is visible afterwards.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "storage/storage_engine.h"

namespace sentinel::storage {
namespace {

class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed * 2654435761u + 1) {}
  std::uint32_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state_ >> 33);
  }
  int Below(int n) { return static_cast<int>(Next() % static_cast<unsigned>(n)); }

 private:
  std::uint64_t state_;
};

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}
std::string Str(const std::vector<std::uint8_t>& b) {
  return std::string(b.begin(), b.end());
}

class RecoveryFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryFuzzTest, CommittedStateExactlySurvivesCrash) {
  const int seed = GetParam();
  Lcg rng(static_cast<std::uint64_t>(seed));
  const std::string prefix =
      (std::filesystem::temp_directory_path() /
       ("sentinel_fuzz_" + std::to_string(::getpid()) + "_" +
        std::to_string(seed)))
          .string();
  std::remove((prefix + ".db").c_str());
  std::remove((prefix + ".wal").c_str());

  // expected committed value per rid ("" == deleted/never-committed).
  std::map<std::string, std::string> committed;
  std::vector<Rid> all_rids;
  PageId file;
  {
    StorageEngine engine;
    ASSERT_TRUE(engine.Open(prefix).ok());
    auto created = engine.CreateHeapFile();
    ASSERT_TRUE(created.ok());
    file = *created;

    auto key = [](const Rid& rid) {
      return std::to_string(rid.page_id) + ":" + std::to_string(rid.slot);
    };

    for (int round = 0; round < 12; ++round) {
      auto txn = engine.Begin();
      ASSERT_TRUE(txn.ok());
      // Shadow state for this transaction.
      std::map<std::string, std::string> local = committed;
      const int ops = 1 + rng.Below(8);
      for (int op = 0; op < ops; ++op) {
        const int kind = rng.Below(3);
        if (kind == 0 || all_rids.empty()) {
          std::string value =
              "v" + std::to_string(round) + "_" + std::to_string(op);
          auto rid = engine.Insert(*txn, file, Bytes(value));
          ASSERT_TRUE(rid.ok());
          all_rids.push_back(*rid);
          local[key(*rid)] = value;
        } else {
          const Rid& rid = all_rids[static_cast<std::size_t>(
              rng.Below(static_cast<int>(all_rids.size())))];
          auto it = local.find(key(rid));
          const bool live = it != local.end() && !it->second.empty();
          if (!live) continue;
          if (kind == 1) {
            std::string value = "u" + std::to_string(round) + "_" +
                                std::to_string(op);
            ASSERT_TRUE(engine.Update(*txn, file, rid, Bytes(value)).ok());
            local[key(rid)] = value;
          } else {
            ASSERT_TRUE(engine.Delete(*txn, file, rid).ok());
            local[key(rid)] = "";
          }
        }
      }
      const int fate = rng.Below(3);
      if (fate == 0) {
        ASSERT_TRUE(engine.Abort(*txn).ok());
      } else if (fate == 1) {
        ASSERT_TRUE(engine.Commit(*txn).ok());
        committed = local;
      } else {
        // Leave in flight — a loser at crash time. Each round uses fresh
        // rids or rids it could lock, so later rounds may block on its
        // locks; release them by aborting half the time at the *end*.
        if (rng.Below(2) == 0) {
          ASSERT_TRUE(engine.Abort(*txn).ok());
        } else {
          ASSERT_TRUE(engine.Commit(*txn).ok());
          committed = local;
        }
      }
    }
    ASSERT_TRUE(engine.log_manager()->Flush().ok());
    // Crash: buffered pages are lost, clean-shutdown marker stays unset.
    engine.SimulateCrash();
  }

  StorageEngine recovered;
  ASSERT_TRUE(recovered.Open(prefix).ok());
  auto txn = recovered.Begin();
  ASSERT_TRUE(txn.ok());
  std::map<std::string, std::string> visible;
  ASSERT_TRUE(recovered
                  .Scan(*txn, file,
                        [&](const Rid& rid, const std::vector<std::uint8_t>& rec) {
                          visible[std::to_string(rid.page_id) + ":" +
                                  std::to_string(rid.slot)] = Str(rec);
                          return Status::OK();
                        })
                  .ok());
  ASSERT_TRUE(recovered.Commit(*txn).ok());

  // Every committed live record is visible with the right value...
  for (const auto& [k, v] : committed) {
    if (v.empty()) {
      EXPECT_EQ(visible.count(k), 0u) << "deleted record resurrected: " << k;
    } else {
      ASSERT_EQ(visible.count(k), 1u) << "lost record " << k;
      EXPECT_EQ(visible[k], v) << "wrong value at " << k;
    }
  }
  // ...and nothing else is.
  for (const auto& [k, v] : visible) {
    (void)v;
    auto it = committed.find(k);
    EXPECT_TRUE(it != committed.end() && !it->second.empty())
        << "phantom record " << k;
  }
  ASSERT_TRUE(recovered.Close().ok());
  std::remove((prefix + ".db").c_str());
  std::remove((prefix + ".wal").c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzzTest, ::testing::Range(1, 9));

// A torn final append (injected via failpoint, then a crash) must never be
// replayed: the checksum catches the partial frame, Open() truncates it, and
// recovery sees exactly the state as of the last intact commit.
TEST(RecoveryTornWriteTest, TornTailRecordIsNeverReplayed) {
  const std::string prefix =
      (std::filesystem::temp_directory_path() /
       ("sentinel_torn_" + std::to_string(::getpid())))
          .string();
  std::remove((prefix + ".db").c_str());
  std::remove((prefix + ".wal").c_str());

  PageId file;
  {
    StorageEngine engine;
    ASSERT_TRUE(engine.Open(prefix).ok());
    auto created = engine.CreateHeapFile();
    ASSERT_TRUE(created.ok());
    file = *created;

    auto txn1 = engine.Begin();
    ASSERT_TRUE(txn1.ok());
    ASSERT_TRUE(engine.Insert(*txn1, file, Bytes("intact")).ok());
    ASSERT_TRUE(engine.Commit(*txn1).ok());

    // txn2's insert append is torn: a strict prefix of the frame reaches
    // the OS before the "crash".
    auto txn2 = engine.Begin();
    ASSERT_TRUE(txn2.ok());
    ASSERT_TRUE(FailPointRegistry::Instance()
                    .Enable("wal.append", "torn(hit=1)")
                    .ok());
    auto rid2 = engine.Insert(*txn2, file, Bytes("torn-victim"));
    FailPointRegistry::Instance().DisableAll();
    EXPECT_FALSE(rid2.ok());  // the injected torn write surfaced as an error
    EXPECT_TRUE(engine.log_manager()->wedged());
    engine.SimulateCrash();
  }

  StorageEngine recovered;
  ASSERT_TRUE(recovered.Open(prefix).ok());
  // The partial frame was detected and physically truncated.
  EXPECT_GT(recovered.log_manager()->truncated_bytes(), 0u);
  auto txn = recovered.Begin();
  ASSERT_TRUE(txn.ok());
  int count = 0;
  std::string only;
  ASSERT_TRUE(recovered
                  .Scan(*txn, file,
                        [&](const Rid&, const std::vector<std::uint8_t>& rec) {
                          ++count;
                          only = Str(rec);
                          return Status::OK();
                        })
                  .ok());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(only, "intact");
  ASSERT_TRUE(recovered.Commit(*txn).ok());

  // The recovered log accepts appends again: the system is fully usable.
  auto txn2 = recovered.Begin();
  ASSERT_TRUE(txn2.ok());
  ASSERT_TRUE(recovered.Insert(*txn2, file, Bytes("after")).ok());
  ASSERT_TRUE(recovered.Commit(*txn2).ok());
  ASSERT_TRUE(recovered.Close().ok());
  std::remove((prefix + ".db").c_str());
  std::remove((prefix + ".wal").c_str());
}

// Sweep every possible torn-frame length of the final append: whatever prefix
// of the last frame survives, recovery must land on the state of the last
// intact record and never crash or replay garbage.
TEST(RecoveryTornWriteTest, EveryTornPrefixLengthTruncatesCleanly) {
  const std::string prefix =
      (std::filesystem::temp_directory_path() /
       ("sentinel_torn_sweep_" + std::to_string(::getpid())))
          .string();
  for (std::uint32_t torn_bytes : {1u, 3u, 4u, 7u, 8u, 9u, 20u}) {
    std::remove((prefix + ".db").c_str());
    std::remove((prefix + ".wal").c_str());
    PageId file;
    {
      StorageEngine engine;
      ASSERT_TRUE(engine.Open(prefix).ok());
      auto created = engine.CreateHeapFile();
      ASSERT_TRUE(created.ok());
      file = *created;
      auto txn1 = engine.Begin();
      ASSERT_TRUE(engine.Insert(*txn1, file, Bytes("keep")).ok());
      ASSERT_TRUE(engine.Commit(*txn1).ok());

      auto txn2 = engine.Begin();
      ASSERT_TRUE(FailPointRegistry::Instance()
                      .Enable("wal.append",
                              "torn(hit=1,bytes=" +
                                  std::to_string(torn_bytes) + ")")
                      .ok());
      EXPECT_FALSE(engine.Insert(*txn2, file, Bytes("gone")).ok());
      FailPointRegistry::Instance().DisableAll();
      engine.SimulateCrash();
    }
    StorageEngine recovered;
    ASSERT_TRUE(recovered.Open(prefix).ok()) << "torn_bytes=" << torn_bytes;
    auto txn = recovered.Begin();
    int count = 0;
    ASSERT_TRUE(recovered
                    .Scan(*txn, file,
                          [&](const Rid&, const std::vector<std::uint8_t>&) {
                            ++count;
                            return Status::OK();
                          })
                    .ok());
    EXPECT_EQ(count, 1) << "torn_bytes=" << torn_bytes;
    ASSERT_TRUE(recovered.Commit(*txn).ok());
    ASSERT_TRUE(recovered.Close().ok());
  }
  std::remove((prefix + ".db").c_str());
  std::remove((prefix + ".wal").c_str());
}

}  // namespace
}  // namespace sentinel::storage
