// Crash-recovery fuzz: random interleavings of inserts/updates/deletes across
// committed and uncommitted transactions, followed by a simulated crash
// (unflushed pages lost, WAL survives) and reopen. Invariant: exactly the
// committed state is visible afterwards.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "storage/storage_engine.h"

namespace sentinel::storage {
namespace {

class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed * 2654435761u + 1) {}
  std::uint32_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state_ >> 33);
  }
  int Below(int n) { return static_cast<int>(Next() % static_cast<unsigned>(n)); }

 private:
  std::uint64_t state_;
};

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}
std::string Str(const std::vector<std::uint8_t>& b) {
  return std::string(b.begin(), b.end());
}

class RecoveryFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryFuzzTest, CommittedStateExactlySurvivesCrash) {
  const int seed = GetParam();
  Lcg rng(static_cast<std::uint64_t>(seed));
  const std::string prefix =
      (std::filesystem::temp_directory_path() /
       ("sentinel_fuzz_" + std::to_string(::getpid()) + "_" +
        std::to_string(seed)))
          .string();
  std::remove((prefix + ".db").c_str());
  std::remove((prefix + ".wal").c_str());

  // expected committed value per rid ("" == deleted/never-committed).
  std::map<std::string, std::string> committed;
  std::vector<Rid> all_rids;
  PageId file;
  {
    StorageEngine engine;
    ASSERT_TRUE(engine.Open(prefix).ok());
    auto created = engine.CreateHeapFile();
    ASSERT_TRUE(created.ok());
    file = *created;

    auto key = [](const Rid& rid) {
      return std::to_string(rid.page_id) + ":" + std::to_string(rid.slot);
    };

    for (int round = 0; round < 12; ++round) {
      auto txn = engine.Begin();
      ASSERT_TRUE(txn.ok());
      // Shadow state for this transaction.
      std::map<std::string, std::string> local = committed;
      const int ops = 1 + rng.Below(8);
      for (int op = 0; op < ops; ++op) {
        const int kind = rng.Below(3);
        if (kind == 0 || all_rids.empty()) {
          std::string value =
              "v" + std::to_string(round) + "_" + std::to_string(op);
          auto rid = engine.Insert(*txn, file, Bytes(value));
          ASSERT_TRUE(rid.ok());
          all_rids.push_back(*rid);
          local[key(*rid)] = value;
        } else {
          const Rid& rid = all_rids[static_cast<std::size_t>(
              rng.Below(static_cast<int>(all_rids.size())))];
          auto it = local.find(key(rid));
          const bool live = it != local.end() && !it->second.empty();
          if (!live) continue;
          if (kind == 1) {
            std::string value = "u" + std::to_string(round) + "_" +
                                std::to_string(op);
            ASSERT_TRUE(engine.Update(*txn, file, rid, Bytes(value)).ok());
            local[key(rid)] = value;
          } else {
            ASSERT_TRUE(engine.Delete(*txn, file, rid).ok());
            local[key(rid)] = "";
          }
        }
      }
      const int fate = rng.Below(3);
      if (fate == 0) {
        ASSERT_TRUE(engine.Abort(*txn).ok());
      } else if (fate == 1) {
        ASSERT_TRUE(engine.Commit(*txn).ok());
        committed = local;
      } else {
        // Leave in flight — a loser at crash time. Each round uses fresh
        // rids or rids it could lock, so later rounds may block on its
        // locks; release them by aborting half the time at the *end*.
        if (rng.Below(2) == 0) {
          ASSERT_TRUE(engine.Abort(*txn).ok());
        } else {
          ASSERT_TRUE(engine.Commit(*txn).ok());
          committed = local;
        }
      }
    }
    ASSERT_TRUE(engine.log_manager()->Flush().ok());
    // Crash: buffered pages are lost, clean-shutdown marker stays unset.
    engine.SimulateCrash();
  }

  StorageEngine recovered;
  ASSERT_TRUE(recovered.Open(prefix).ok());
  auto txn = recovered.Begin();
  ASSERT_TRUE(txn.ok());
  std::map<std::string, std::string> visible;
  ASSERT_TRUE(recovered
                  .Scan(*txn, file,
                        [&](const Rid& rid, const std::vector<std::uint8_t>& rec) {
                          visible[std::to_string(rid.page_id) + ":" +
                                  std::to_string(rid.slot)] = Str(rec);
                          return Status::OK();
                        })
                  .ok());
  ASSERT_TRUE(recovered.Commit(*txn).ok());

  // Every committed live record is visible with the right value...
  for (const auto& [k, v] : committed) {
    if (v.empty()) {
      EXPECT_EQ(visible.count(k), 0u) << "deleted record resurrected: " << k;
    } else {
      ASSERT_EQ(visible.count(k), 1u) << "lost record " << k;
      EXPECT_EQ(visible[k], v) << "wrong value at " << k;
    }
  }
  // ...and nothing else is.
  for (const auto& [k, v] : visible) {
    (void)v;
    auto it = committed.find(k);
    EXPECT_TRUE(it != committed.end() && !it->second.empty())
        << "phantom record " << k;
  }
  ASSERT_TRUE(recovered.Close().ok());
  std::remove((prefix + ".db").c_str());
  std::remove((prefix + ".wal").c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzzTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace sentinel::storage
