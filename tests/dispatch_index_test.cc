// The precompiled dispatch index (DESIGN.md "Concurrent dispatch fast
// path"): invalidation on event definition and class registration, negative
// caching, Install-failure atomicity, and Emit's reentrant-sink hardening.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/symbol.h"
#include "detector/local_detector.h"
#include "oodb/schema.h"

namespace sentinel::detector {
namespace {

class RecordingSink : public EventSink {
 public:
  void OnEvent(const Occurrence& occurrence, ParamContext) override {
    events.push_back(occurrence.event_name);
  }
  std::vector<std::string> events;
};

std::shared_ptr<const ParamList> NoParams() {
  return std::make_shared<ParamList>();
}

// Declaring a new primitive event AFTER a (class, method) key has been
// routed (and therefore compiled into the index) must invalidate the index:
// subsequent notifications fire the new event.
TEST(DispatchIndexTest, EventDefinedAfterRoutingFires) {
  LocalEventDetector detector;
  RecordingSink sink;
  ASSERT_TRUE(detector
                  .DefinePrimitive("e1", "Stock", EventModifier::kEnd,
                                   "void f()")
                  .ok());
  ASSERT_TRUE(detector.Subscribe("e1", &sink, ParamContext::kRecent).ok());
  // Compile the key into the index (several notifications so the memo and
  // the published index are both warm).
  for (int i = 0; i < 3; ++i) {
    detector.Notify("Stock", 1, EventModifier::kEnd, "void f()", NoParams(),
                    1);
  }
  ASSERT_EQ(sink.events.size(), 3u);

  // A second event on the same key, declared after the key went hot.
  ASSERT_TRUE(detector
                  .DefinePrimitive("e2", "Stock", EventModifier::kEnd,
                                   "void f()")
                  .ok());
  ASSERT_TRUE(detector.Subscribe("e2", &sink, ParamContext::kRecent).ok());
  sink.events.clear();
  detector.Notify("Stock", 1, EventModifier::kEnd, "void f()", NoParams(), 1);
  EXPECT_EQ(sink.events.size(), 2u);
  EXPECT_NE(std::find(sink.events.begin(), sink.events.end(), "e1"),
            sink.events.end());
  EXPECT_NE(std::find(sink.events.begin(), sink.events.end(), "e2"),
            sink.events.end());
}

// A negative-cache entry (class with no matching events) must be invalidated
// when the class hierarchy grows: once the notifying class is registered as
// a subclass of the event's class, the base-class event fires for it.
TEST(DispatchIndexTest, SubclassRegisteredAfterNegativeCacheFires) {
  oodb::ClassRegistry registry;
  ASSERT_TRUE(registry.Register(oodb::ClassDef("Base", "")).ok());

  LocalEventDetector detector;
  detector.set_class_registry(&registry);
  RecordingSink sink;
  ASSERT_TRUE(detector
                  .DefinePrimitive("base_f", "Base", EventModifier::kEnd,
                                   "void f()")
                  .ok());
  ASSERT_TRUE(detector.Subscribe("base_f", &sink, ParamContext::kRecent).ok());

  // "Derived" is unknown to the registry: notifications route nowhere and
  // the key is negatively cached.
  for (int i = 0; i < 3; ++i) {
    detector.Notify("Derived", 1, EventModifier::kEnd, "void f()", NoParams(),
                    1);
  }
  EXPECT_TRUE(sink.events.empty());

  // Registering Derived under Base bumps the registry version; the stale
  // negative entry must not suppress the base-class event.
  ASSERT_TRUE(registry.Register(oodb::ClassDef("Derived", "Base")).ok());
  detector.Notify("Derived", 1, EventModifier::kEnd, "void f()", NoParams(),
                  1);
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0], "base_f");
}

// A failed duplicate-name definition must leave no stale side-table state:
// the losing definition's (class, method) routing must not exist, and the
// winner keeps working.
TEST(DispatchIndexTest, FailedDuplicateDefineLeavesNoSideTables) {
  LocalEventDetector detector;
  RecordingSink sink;
  ASSERT_TRUE(detector
                  .DefinePrimitive("e", "Stock", EventModifier::kEnd,
                                   "void f()")
                  .ok());
  // Same event name, different class/method: must fail...
  auto dup = detector.DefinePrimitive("e", "Bond", EventModifier::kEnd,
                                      "void g()");
  EXPECT_FALSE(dup.ok());
  ASSERT_TRUE(detector.Subscribe("e", &sink, ParamContext::kRecent).ok());

  // ...and must not have routed (Bond, void g()) anywhere.
  detector.Notify("Bond", 1, EventModifier::kEnd, "void g()", NoParams(), 1);
  EXPECT_TRUE(sink.events.empty());

  // The winning definition still routes.
  detector.Notify("Stock", 1, EventModifier::kEnd, "void f()", NoParams(), 1);
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0], "e");
}

// A sink that removes itself (and a later sink) from the node's subscriber
// list from inside OnEvent must not derail the emission loop: removed sinks
// are skipped, the loop terminates, and later notifications deliver to
// nobody who was removed. (Detector-level Unsubscribe takes the exclusive
// graph lock and therefore must NOT be called from inside a delivery; the
// node-level RemoveSink is the reentrancy-safe operation Emit hardens
// against.)
TEST(DispatchIndexTest, ReentrantRemoveSinkDuringEmit) {
  LocalEventDetector detector;

  class SelfRemovingSink : public EventSink {
   public:
    void OnEvent(const Occurrence&, ParamContext) override {
      ++hits;
      for (EventSink* victim : remove_on_event) {
        node_->RemoveSink(victim);
      }
      remove_on_event.clear();
    }
    EventNode* node_ = nullptr;
    std::vector<EventSink*> remove_on_event;
    int hits = 0;
  };

  SelfRemovingSink first;
  SelfRemovingSink second;
  auto node = detector.DefinePrimitive("e", "Stock", EventModifier::kEnd,
                                       "void f()");
  ASSERT_TRUE(node.ok());
  first.node_ = *node;
  second.node_ = *node;
  ASSERT_TRUE(detector.Subscribe("e", &first, ParamContext::kRecent).ok());
  ASSERT_TRUE(detector.Subscribe("e", &second, ParamContext::kRecent).ok());
  // On the first delivery, `first` removes itself AND `second`.
  first.remove_on_event = {&first, &second};

  detector.Notify("Stock", 1, EventModifier::kEnd, "void f()", NoParams(), 1);
  EXPECT_EQ(first.hits, 1);
  EXPECT_EQ(second.hits, 0) << "sink removed mid-emission was still invoked";

  // Nobody left subscribed: a second notification delivers nothing.
  detector.Notify("Stock", 1, EventModifier::kEnd, "void f()", NoParams(), 1);
  EXPECT_EQ(first.hits, 1);
  EXPECT_EQ(second.hits, 0);
}

// Symbols interned for event matching are stable and distinct.
TEST(SymbolTableTest, InternIsIdempotentAndDistinct) {
  auto& table = common::SymbolTable::Global();
  const common::SymbolId a = table.Intern("DispatchIndexTest.ClassA");
  const common::SymbolId b = table.Intern("DispatchIndexTest.ClassB");
  EXPECT_NE(a, common::kInvalidSymbol);
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("DispatchIndexTest.ClassA"), a);
  EXPECT_EQ(table.TryLookup("DispatchIndexTest.ClassA"), a);
  EXPECT_EQ(table.TryLookup("DispatchIndexTest.NeverInterned"),
            common::kInvalidSymbol);
  EXPECT_EQ(table.NameOf(a), "DispatchIndexTest.ClassA");
}

}  // namespace
}  // namespace sentinel::detector
