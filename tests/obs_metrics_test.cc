// Observability layer: sharded counters, latency histograms, per-node
// per-context metrics, the provenance trace ring, and the lifetime/race
// regressions that ride along with it (scheduler policy atomics, detached
// firing parameter pinning). Suite names start with Obs* so the TSan CI job's
// --gtest_filter picks them up.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "detector/local_detector.h"
#include "detector_test_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rules/rule_manager.h"
#include "rules/scheduler.h"
#include "txn/nested_txn.h"

namespace sentinel::obs {
namespace {

using detector::EventModifier;
using detector::LocalEventDetector;
using detector::ParamContext;

TEST(ObsShardedCounterTest, ConcurrentAddsAggregate) {
  ShardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAdds; ++i) counter.Add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsHistogramTest, RecordsCountSumMaxAndQuantiles) {
  LatencyHistogram h;
  h.Record(100);
  h.Record(200);
  h.Record(400);
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum_ns, 700u);
  EXPECT_EQ(snap.max_ns, 400u);
  EXPECT_EQ(snap.mean_ns(), 233u);
  // Quantiles are bucket upper bounds (2^i - 1), clamped to the max.
  EXPECT_EQ(snap.QuantileNs(0.0), 127u);  // 100 lands in bucket 7
  EXPECT_EQ(snap.QuantileNs(0.5), 255u);  // 200 lands in bucket 8
  EXPECT_EQ(snap.QuantileNs(1.0), 400u);  // bucket 9's bound clamps to max
}

TEST(ObsHistogramTest, AggregatesAcrossThreads) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kRecords; ++i) {
        h.Record(static_cast<std::uint64_t>(t + 1) * 10);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kRecords);
  // sum = 5000 * 10 * (1 + 2 + ... + 8)
  EXPECT_EQ(snap.sum_ns, static_cast<std::uint64_t>(kRecords) * 10 * 36);
  EXPECT_EQ(snap.max_ns, 80u);
  std::uint64_t bucketed = 0;
  for (auto b : snap.buckets) bucketed += b;
  EXPECT_EQ(bucketed, snap.count);
}

TEST(ObsHistogramTest, ZeroLandsInBucketZero) {
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketOf(1), 1);
  EXPECT_EQ(LatencyHistogram::BucketOf(2), 2);
  LatencyHistogram h;
  h.Record(0);
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.QuantileNs(0.5), 0u);
  EXPECT_EQ(snap.mean_ns(), 0u);
}

TEST(ObsHistogramTest, OverflowClampsToLastBucket) {
  LatencyHistogram h;
  h.Record(~0ull);  // bit_width 64 — far beyond the 48 buckets
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.buckets[LatencyHistogram::kBuckets - 1], 1u);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.max_ns, ~0ull);
  // The quantile reports the last bucket's upper bound, not the raw max:
  // the histogram cannot resolve beyond its bucket range.
  EXPECT_EQ(snap.QuantileNs(1.0),
            (std::uint64_t{1} << (LatencyHistogram::kBuckets - 1)) - 1);
}

TEST(ObsHistogramTest, QuantileOnEmptyIsZero) {
  LatencyHistogram::Snapshot snap;
  EXPECT_EQ(snap.QuantileNs(0.0), 0u);
  EXPECT_EQ(snap.QuantileNs(0.99), 0u);
  EXPECT_EQ(snap.QuantileNs(1.0), 0u);
  EXPECT_EQ(snap.mean_ns(), 0u);
}

TEST(ObsHistogramTest, QuantileClampsQOutsideUnitInterval) {
  LatencyHistogram h;
  h.Record(100);
  auto snap = h.TakeSnapshot();
  // Out-of-range q behaves like the nearest bound; a single 100ns sample's
  // bucket bound (127) clamps to the recorded max.
  EXPECT_EQ(snap.QuantileNs(-1.0), snap.QuantileNs(0.0));
  EXPECT_EQ(snap.QuantileNs(2.0), snap.QuantileNs(1.0));
  EXPECT_EQ(snap.QuantileNs(1.0), 100u);
}

// Satellite regression: a snapshot taken under concurrent recording can pair
// a lagging bucket array with a sum that already includes newer samples; the
// mean must clamp to the observed max instead of exceeding every sample.
TEST(ObsHistogramTest, TornSnapshotMeanClampsToMax) {
  LatencyHistogram::Snapshot snap;
  snap.count = 1;
  snap.sum_ns = 10000;
  snap.max_ns = 500;
  EXPECT_EQ(snap.mean_ns(), 500u);
}

TEST(ObsTraceTest, RingWrapsAndCountsDropped) {
  ProvenanceTracer tracer(/*capacity=*/8);
  tracer.set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    tracer.Record(EdgeKind::kPrimitive, "m", "e", /*txn=*/1,
                  ParamContext::kRecent);
  }
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  auto edges = tracer.Snapshot();
  ASSERT_EQ(edges.size(), 8u);
  // The survivors are the 8 newest, oldest first.
  EXPECT_EQ(edges.front().seq, 13u);
  EXPECT_EQ(edges.back().seq, 20u);
}

TEST(ObsTraceTest, FlushTxnDropsOnlyThatTxn) {
  ProvenanceTracer tracer;
  tracer.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    tracer.Record(EdgeKind::kFiring, "e", "r", /*txn=*/1,
                  ParamContext::kRecent);
  }
  for (int i = 0; i < 2; ++i) {
    tracer.Record(EdgeKind::kFiring, "e", "r", /*txn=*/2,
                  ParamContext::kRecent);
  }
  tracer.FlushTxn(1);
  EXPECT_EQ(tracer.size(), 2u);
  for (const auto& edge : tracer.Snapshot()) EXPECT_EQ(edge.txn, 2u);
  auto drained = tracer.DrainTxn(2);
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(ObsTraceTest, DetectorFlushTxnFlushesTrace) {
  LocalEventDetector det;
  ProvenanceTracer tracer;
  det.set_tracer(&tracer);
  tracer.set_enabled(true);
  ASSERT_TRUE(
      det.DefinePrimitive("e1", "C", EventModifier::kEnd, "void f()").ok());
  detector::RecordingSink sink;
  ASSERT_TRUE(det.Subscribe("e1", &sink, ParamContext::kRecent).ok());
  detector::Fire(&det, "C", "void f()", 1, /*txn=*/5);
  detector::Fire(&det, "C", "void f()", 2, /*txn=*/6);
  ASSERT_GT(tracer.size(), 0u);
  det.FlushTxn(5);
  for (const auto& edge : tracer.Snapshot()) EXPECT_EQ(edge.txn, 6u);
}

TEST(ObsNodeMetricsTest, CountersPerContextInSharedGraph) {
  LocalEventDetector det;
  auto node =
      det.DefinePrimitive("e1", "C", EventModifier::kEnd, "void f()");
  ASSERT_TRUE(node.ok());
  // One sink per parameter context, all sharing the node.
  detector::RecordingSink sinks[detector::kNumContexts];
  for (int c = 0; c < detector::kNumContexts; ++c) {
    ASSERT_TRUE(
        det.Subscribe("e1", &sinks[c], static_cast<ParamContext>(c)).ok());
  }
  detector::Fire(&det, "C", "void f()", 1);
  detector::Fire(&det, "C", "void f()", 2);
  const obs::NodeMetrics& m = (*node)->metrics();
  for (int c = 0; c < detector::kNumContexts; ++c) {
    auto snap = m.ForContext(static_cast<ParamContext>(c));
    EXPECT_EQ(snap.received, 2u) << "context " << c;
    EXPECT_EQ(snap.detected, 2u) << "context " << c;
    // Sinks see every active context's detection and filter themselves
    // (as Rule::OnEvent does); count only their own context.
    EXPECT_EQ(sinks[c].CountIn(static_cast<ParamContext>(c)), 2u)
        << "context " << c;
  }
  EXPECT_EQ(m.received_total(), 2u * detector::kNumContexts);
  EXPECT_EQ(m.detected_total(), 2u * detector::kNumContexts);
}

// S2 regression: policy/contingency are read by scheduler workers while the
// application may retune them — both must be data-race free (TSan verifies).
TEST(ObsSchedulerTest, PolicySettersRaceWithReaders) {
  txn::NestedTransactionManager nested;
  rules::RuleScheduler scheduler(&nested, nullptr,
                                 rules::RuleScheduler::Options{});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 2000; ++i) {
      scheduler.set_policy(i % 2 == 0 ? rules::SchedulingPolicy::kSerial
                                      : rules::SchedulingPolicy::kConcurrent);
      scheduler.set_contingency(i % 2 == 0
                                    ? rules::ContingencyPolicy::kSkipRule
                                    : rules::ContingencyPolicy::kAbortTop);
    }
    stop = true;
  });
  std::thread reader([&] {
    std::uint64_t observed = 0;
    while (!stop) {
      observed += static_cast<std::uint64_t>(scheduler.policy());
      observed += static_cast<std::uint64_t>(scheduler.contingency());
    }
    // Keep the loop from being optimized away.
    EXPECT_GE(observed, 0u);
  });
  writer.join();
  reader.join();
}

/// Detector + scheduler + manager for the detached-lifetime regression.
class ObsDetachedLifetimeTest : public ::testing::Test {
 protected:
  ObsDetachedLifetimeTest()
      : scheduler_(&nested_, nullptr, rules::RuleScheduler::Options{}),
        manager_(&det_, &scheduler_) {
    (void)*det_.DefinePrimitive("e1", "C", EventModifier::kEnd, "void f(int)");
  }

  LocalEventDetector det_;
  txn::NestedTransactionManager nested_;
  rules::RuleScheduler scheduler_;
  rules::RuleManager manager_;
};

// S4 regression: a DETACHED firing crosses threads, so the parameter list of
// the triggering occurrence must be deep-copied at enqueue time — the caller
// only guarantees it lives until Notify returns. Under ASan the pre-fix
// behavior is a heap-use-after-free in the detached worker.
TEST_F(ObsDetachedLifetimeTest, DetachedFiringOutlivesCallerParams) {
  std::atomic<int> observed{0};
  rules::RuleManager::RuleOptions options;
  options.coupling = rules::CouplingMode::kDetached;
  ASSERT_TRUE(manager_
                  .DefineRule("rd", "e1", nullptr,
                              [&](const rules::RuleContext& ctx) {
                                auto v = ctx.Param("v");
                                if (v.ok()) observed = (*v).AsInt();
                              },
                              options)
                  .ok());
  {
    auto params = std::make_shared<detector::ParamList>();
    params->Insert("v", oodb::Value::Int(42));
    det_.Notify("C", /*oid=*/100, EventModifier::kEnd, "void f(int)", params,
                /*txn=*/1);
    // The only reference dies here, before the detached worker necessarily
    // ran. The enqueue-time deep copy keeps the firing self-contained.
  }
  scheduler_.WaitDetached();
  EXPECT_EQ(observed, 42);
}

}  // namespace
}  // namespace sentinel::obs
