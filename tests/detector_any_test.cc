// ANY(m, E1..En): m-of-n detection across contexts, plus its degenerate
// equivalences with OR (m=1) and AND (m=n), and spec-language support.

#include <gtest/gtest.h>

#include "detector/local_detector.h"
#include "detector_test_util.h"
#include "snoop/parser.h"

namespace sentinel::detector {
namespace {

class AnyOperatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = *det_.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
    b_ = *det_.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
    c_ = *det_.DefinePrimitive("c", "C", EventModifier::kEnd, "void fc()");
  }
  void FireA(int v = 0) { Fire(&det_, "C", "void fa()", v); }
  void FireB(int v = 0) { Fire(&det_, "C", "void fb()", v); }
  void FireC(int v = 0) { Fire(&det_, "C", "void fc()", v); }

  LocalEventDetector det_;
  EventNode* a_ = nullptr;
  EventNode* b_ = nullptr;
  EventNode* c_ = nullptr;
  RecordingSink sink_;
};

TEST_F(AnyOperatorTest, TwoOfThreeFiresOnSecondDistinctEvent) {
  ASSERT_TRUE(det_.DefineAny("any2", 2, {a_, b_, c_}).ok());
  ASSERT_TRUE(det_.Subscribe("any2", &sink_, ParamContext::kChronicle).ok());
  FireA(1);
  EXPECT_TRUE(sink_.hits.empty());
  FireC(2);  // second distinct event -> detect (a, c)
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.constituents.size(), 2u);
  EXPECT_EQ(sink_.hits[0].occurrence.Of("a").size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.Of("c").size(), 1u);
}

TEST_F(AnyOperatorTest, RepeatsOfOneEventDoNotSatisfyThreshold) {
  ASSERT_TRUE(det_.DefineAny("any2", 2, {a_, b_, c_}).ok());
  ASSERT_TRUE(det_.Subscribe("any2", &sink_, ParamContext::kChronicle).ok());
  FireA(1);
  FireA(2);
  FireA(3);  // still only one DISTINCT event
  EXPECT_TRUE(sink_.hits.empty());
  FireB(4);
  EXPECT_EQ(sink_.hits.size(), 1u);
}

TEST_F(AnyOperatorTest, ThresholdOneBehavesLikeOr) {
  ASSERT_TRUE(det_.DefineAny("any1", 1, {a_, b_}).ok());
  ASSERT_TRUE(det_.Subscribe("any1", &sink_, ParamContext::kChronicle).ok());
  FireA(1);
  FireB(2);
  FireA(3);
  EXPECT_EQ(sink_.hits.size(), 3u);
}

TEST_F(AnyOperatorTest, ThresholdNBehavesLikeAnd) {
  ASSERT_TRUE(det_.DefineAny("all", 2, {a_, b_}).ok());
  ASSERT_TRUE(det_.DefineAnd("and", a_, b_).ok());
  RecordingSink any_sink, and_sink;
  ASSERT_TRUE(det_.Subscribe("all", &any_sink, ParamContext::kChronicle).ok());
  ASSERT_TRUE(det_.Subscribe("and", &and_sink, ParamContext::kChronicle).ok());
  FireA(1);
  FireB(2);
  FireB(3);
  FireA(4);
  EXPECT_EQ(any_sink.hits.size(), and_sink.hits.size());
}

TEST_F(AnyOperatorTest, ChronicleConsumesParticipants) {
  ASSERT_TRUE(det_.DefineAny("any2", 2, {a_, b_, c_}).ok());
  ASSERT_TRUE(det_.Subscribe("any2", &sink_, ParamContext::kChronicle).ok());
  FireA(1);
  FireB(2);  // detect (a1, b2); both consumed
  FireC(3);  // no partner left
  EXPECT_EQ(sink_.hits.size(), 1u);
  FireA(4);  // pairs with buffered c3
  EXPECT_EQ(sink_.hits.size(), 2u);
}

TEST_F(AnyOperatorTest, RecentReusesPartners) {
  ASSERT_TRUE(det_.DefineAny("any2", 2, {a_, b_, c_}).ok());
  ASSERT_TRUE(det_.Subscribe("any2", &sink_, ParamContext::kRecent).ok());
  FireA(1);
  FireB(2);  // detect (a1, b2)
  FireC(3);  // recent a and b still present -> detect again
  EXPECT_EQ(sink_.hits.size(), 2u);
}

TEST_F(AnyOperatorTest, CumulativeTakesEverything) {
  ASSERT_TRUE(det_.DefineAny("any2", 2, {a_, b_, c_}).ok());
  ASSERT_TRUE(det_.Subscribe("any2", &sink_, ParamContext::kCumulative).ok());
  FireA(1);
  FireA(2);
  FireB(3);
  ASSERT_EQ(sink_.hits.size(), 1u);
  EXPECT_EQ(sink_.hits[0].occurrence.constituents.size(), 3u);
  // Buffer flushed by the detection.
  EXPECT_EQ(det_.BufferedCount(), 0u);
}

TEST_F(AnyOperatorTest, InvalidThresholdRejected) {
  EXPECT_TRUE(det_.DefineAny("bad0", 0, {a_, b_}).status().IsInvalidArgument());
  EXPECT_TRUE(det_.DefineAny("bad3", 3, {a_, b_}).status().IsInvalidArgument());
}

TEST_F(AnyOperatorTest, FlushTxnRespectsTransactions) {
  ASSERT_TRUE(det_.DefineAny("any2", 2, {a_, b_, c_}).ok());
  ASSERT_TRUE(det_.Subscribe("any2", &sink_, ParamContext::kChronicle).ok());
  Fire(&det_, "C", "void fa()", 1, /*txn=*/1);
  det_.FlushTxn(1);
  Fire(&det_, "C", "void fb()", 2, /*txn=*/2);
  EXPECT_TRUE(sink_.hits.empty());  // the flushed a cannot participate
}

TEST_F(AnyOperatorTest, SpecLanguageAnySyntax) {
  auto expr = snoop::Parser::ParseExpression("ANY(2, a, b, c)");
  ASSERT_TRUE(expr.ok()) << expr.status();
  EXPECT_EQ((*expr)->kind, snoop::EventExpr::Kind::kAny);
  EXPECT_EQ((*expr)->any_threshold, 2u);
  EXPECT_EQ((*expr)->children.size(), 3u);
  EXPECT_EQ((*expr)->ToString(), "ANY(2, a, b, c)");
  // Round trip.
  auto again = snoop::Parser::ParseExpression((*expr)->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->ToString(), (*expr)->ToString());
  // Errors.
  EXPECT_FALSE(snoop::Parser::ParseExpression("ANY(0, a, b)").ok());
  EXPECT_FALSE(snoop::Parser::ParseExpression("ANY(3, a, b)").ok());
  EXPECT_FALSE(snoop::Parser::ParseExpression("ANY(1, a)").ok());
}

}  // namespace
}  // namespace sentinel::detector
