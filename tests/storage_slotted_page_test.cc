#include "storage/slotted_page.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "storage/page.h"

namespace sentinel::storage {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string Str(const std::vector<std::uint8_t>& b) {
  return std::string(b.begin(), b.end());
}

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : sp_(&page_) { sp_.Init(); }
  Page page_;
  SlottedPage sp_;
};

TEST_F(SlottedPageTest, InsertAndRead) {
  auto rec = Bytes("hello");
  auto slot = sp_.Insert(rec.data(), rec.size());
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(*slot, 0);
  auto read = sp_.Read(*slot);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(Str(*read), "hello");
}

TEST_F(SlottedPageTest, MultipleInsertsGetDistinctSlots) {
  for (int i = 0; i < 10; ++i) {
    auto rec = Bytes("rec" + std::to_string(i));
    auto slot = sp_.Insert(rec.data(), rec.size());
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(*slot, i);
  }
  EXPECT_EQ(sp_.slot_count(), 10);
  for (int i = 0; i < 10; ++i) {
    auto read = sp_.Read(static_cast<SlotId>(i));
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(Str(*read), "rec" + std::to_string(i));
  }
}

TEST_F(SlottedPageTest, DeleteTombstonesSlot) {
  auto rec = Bytes("x");
  auto slot = sp_.Insert(rec.data(), rec.size());
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(sp_.Delete(*slot).ok());
  EXPECT_FALSE(sp_.IsLive(*slot));
  EXPECT_TRUE(sp_.Read(*slot).status().IsNotFound());
  EXPECT_TRUE(sp_.Delete(*slot).IsNotFound());
}

TEST_F(SlottedPageTest, DeletedSlotIsReused) {
  auto a = Bytes("a"), b = Bytes("b"), c = Bytes("c");
  auto s0 = sp_.Insert(a.data(), a.size());
  auto s1 = sp_.Insert(b.data(), b.size());
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(sp_.Delete(*s0).ok());
  auto s2 = sp_.Insert(c.data(), c.size());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, *s0);  // reuse of the tombstoned slot
  EXPECT_EQ(sp_.slot_count(), 2);
}

TEST_F(SlottedPageTest, UpdateInPlaceAndGrow) {
  auto rec = Bytes("short");
  auto slot = sp_.Insert(rec.data(), rec.size());
  ASSERT_TRUE(slot.ok());

  auto smaller = Bytes("ab");
  ASSERT_TRUE(sp_.Update(*slot, smaller.data(), smaller.size()).ok());
  EXPECT_EQ(Str(*sp_.Read(*slot)), "ab");

  auto bigger = Bytes(std::string(100, 'z'));
  ASSERT_TRUE(sp_.Update(*slot, bigger.data(), bigger.size()).ok());
  EXPECT_EQ(Str(*sp_.Read(*slot)), std::string(100, 'z'));
}

TEST_F(SlottedPageTest, FillPageThenResourceExhausted) {
  auto rec = Bytes(std::string(100, 'a'));
  int inserted = 0;
  for (;;) {
    auto slot = sp_.Insert(rec.data(), rec.size());
    if (!slot.ok()) {
      EXPECT_EQ(slot.status().code(), StatusCode::kResourceExhausted);
      break;
    }
    ++inserted;
    ASSERT_LT(inserted, 1000) << "page never filled";
  }
  // ~4KB payload / (100B + 4B slot) ≈ 39 records.
  EXPECT_GT(inserted, 30);
  EXPECT_LT(inserted, 45);
}

TEST_F(SlottedPageTest, CompactionReclaimsDeletedSpace) {
  auto rec = Bytes(std::string(100, 'a'));
  std::vector<SlotId> slots;
  for (;;) {
    auto slot = sp_.Insert(rec.data(), rec.size());
    if (!slot.ok()) break;
    slots.push_back(*slot);
  }
  // Delete every other record; a big record should now fit via compaction.
  for (std::size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(sp_.Delete(slots[i]).ok());
  }
  auto big = Bytes(std::string(800, 'b'));
  auto slot = sp_.Insert(big.data(), big.size());
  ASSERT_TRUE(slot.ok()) << slot.status();
  EXPECT_EQ(Str(*sp_.Read(*slot)), std::string(800, 'b'));
  // Survivors are intact after compaction.
  for (std::size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(Str(*sp_.Read(slots[i])), std::string(100, 'a'));
  }
}

TEST_F(SlottedPageTest, InsertIntoSpecificSlot) {
  auto rec = Bytes("target");
  ASSERT_TRUE(sp_.InsertInto(5, rec.data(), rec.size()).ok());
  EXPECT_EQ(sp_.slot_count(), 6);
  EXPECT_TRUE(sp_.IsLive(5));
  for (SlotId s = 0; s < 5; ++s) EXPECT_FALSE(sp_.IsLive(s));
  EXPECT_EQ(Str(*sp_.Read(5)), "target");
  // Inserting into a live slot fails.
  EXPECT_TRUE(sp_.InsertInto(5, rec.data(), rec.size()).IsAlreadyExists());
  // Tombstoned directory entries are reusable by normal Insert.
  auto other = Bytes("x");
  auto slot = sp_.Insert(other.data(), other.size());
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(*slot, 0);
}

TEST_F(SlottedPageTest, RejectsOversizedRecord) {
  std::vector<std::uint8_t> huge(SlottedPage::kMaxRecordSize + 1, 0);
  EXPECT_TRUE(sp_.Insert(huge.data(), huge.size()).status().IsInvalidArgument());
}

}  // namespace
}  // namespace sentinel::storage
