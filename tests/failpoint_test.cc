// Tests for the failpoint fault-injection subsystem and the crash-consistency
// hardening it exercises: spec parsing, trigger semantics, DiskManager retry
// healing, and WAL checksum truncation of torn/corrupt tails.

#include "common/failpoint.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"

namespace sentinel {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPointRegistry::Instance().DisableAll();
    dir_ = (std::filesystem::temp_directory_path() /
            ("sentinel_failpoint_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FailPointRegistry::Instance().DisableAll();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
  FailPointRegistry& registry() { return FailPointRegistry::Instance(); }
};

TEST_F(FailPointTest, ParseRejectsGarbage) {
  EXPECT_FALSE(FailPointSpec::Parse("").ok());
  EXPECT_FALSE(FailPointSpec::Parse("explode").ok());
  EXPECT_FALSE(FailPointSpec::Parse("error(hit=").ok());
  EXPECT_FALSE(FailPointSpec::Parse("error(hit=x)").ok());
  EXPECT_FALSE(FailPointSpec::Parse("error(hit=0)").ok());
  EXPECT_FALSE(FailPointSpec::Parse("error(prob=1.5)").ok());
  EXPECT_FALSE(FailPointSpec::Parse("error(frequency=2)").ok());
}

TEST_F(FailPointTest, ParseAcceptsFullGrammar) {
  auto spec = FailPointSpec::Parse("torn(hit=3,count=2,bytes=7,msg=oops)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->mode, FailPointMode::kTornWrite);
  EXPECT_EQ(spec->start_hit, 3);
  EXPECT_EQ(spec->max_fires, 2);
  EXPECT_EQ(spec->torn_bytes, 7u);
  EXPECT_EQ(spec->message, "oops");

  auto plain = FailPointSpec::Parse("crash");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->mode, FailPointMode::kCrashAfter);
  EXPECT_EQ(plain->max_fires, 0);  // unlimited (crash only fires once anyway)

  // hit=N alone implies a single fire.
  auto once = FailPointSpec::Parse("error(hit=5)");
  ASSERT_TRUE(once.ok());
  EXPECT_EQ(once->start_hit, 5);
  EXPECT_EQ(once->max_fires, 1);
}

TEST_F(FailPointTest, SpecToStringRoundTrips) {
  for (const char* text :
       {"error(hit=3)", "torn(count=2,bytes=7)", "delay(ms=5)", "crash"}) {
    auto spec = FailPointSpec::Parse(text);
    ASSERT_TRUE(spec.ok()) << text;
    auto again = FailPointSpec::Parse(spec->ToString());
    ASSERT_TRUE(again.ok()) << spec->ToString();
    EXPECT_EQ(again->mode, spec->mode);
    EXPECT_EQ(again->start_hit, spec->start_hit);
    EXPECT_EQ(again->max_fires, spec->max_fires);
  }
}

TEST_F(FailPointTest, HitAndCountTriggers) {
  ASSERT_TRUE(registry().Enable("t.point", "error(hit=3,count=2)").ok());
  EXPECT_TRUE(FailPointRegistry::AnyActive());
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(registry().Evaluate("t.point").fired());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false, false}));
  EXPECT_EQ(registry().hits("t.point"), 6u);
  EXPECT_EQ(registry().fires("t.point"), 2u);
}

TEST_F(FailPointTest, UnarmedNamesAreInert) {
  EXPECT_FALSE(registry().Evaluate("never.armed").fired());
  ASSERT_TRUE(registry().Enable("some.point", "error").ok());
  EXPECT_FALSE(registry().Evaluate("other.point").fired());
  EXPECT_TRUE(registry().Evaluate("some.point").fired());
}

TEST_F(FailPointTest, DisableAndDisableAll) {
  ASSERT_TRUE(registry().Enable("a", "error").ok());
  ASSERT_TRUE(registry().Enable("b", "error").ok());
  EXPECT_TRUE(registry().Disable("a"));
  EXPECT_FALSE(registry().Disable("a"));  // already gone
  EXPECT_FALSE(registry().Evaluate("a").fired());
  EXPECT_TRUE(FailPointRegistry::AnyActive());  // b still armed
  registry().DisableAll();
  EXPECT_FALSE(FailPointRegistry::AnyActive());
  EXPECT_FALSE(registry().Evaluate("b").fired());
}

TEST_F(FailPointTest, ConfigureParsesEnvFormat) {
  ASSERT_TRUE(registry().Configure("a=error(hit=2); b=delay(ms=1)").ok());
  EXPECT_EQ(registry().List().size(), 2u);
  EXPECT_FALSE(registry().Evaluate("a").fired());
  EXPECT_TRUE(registry().Evaluate("a").fired());
  EXPECT_FALSE(registry().Configure("broken").ok());
  EXPECT_FALSE(registry().Configure("a=explode").ok());
}

TEST_F(FailPointTest, ProbabilityZeroNeverFires) {
  ASSERT_TRUE(registry().Enable("p", "error(prob=0.0)").ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(registry().Evaluate("p").fired());
  }
}

TEST_F(FailPointTest, InjectedErrorCarriesSiteAndMessage) {
  ASSERT_TRUE(registry().Enable("site.x", "error").ok());
  Status st = registry().Evaluate("site.x").ToStatus("site.x");
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.ToString().find("site.x"), std::string::npos);

  ASSERT_TRUE(registry().Enable("site.y", "error(msg=custom text)").ok());
  Status custom = registry().Evaluate("site.y").ToStatus("site.y");
  EXPECT_NE(custom.ToString().find("custom text"), std::string::npos);
}

// --- DiskManager: retry healing + failpoint coverage -----------------------

TEST_F(FailPointTest, DiskWriteTransientErrorIsRetried) {
  storage::DiskManager disk;
  ASSERT_TRUE(disk.Open(dir_ + "/db").ok());
  auto page_id = disk.AllocatePage();
  ASSERT_TRUE(page_id.ok());
  storage::Page page;
  page.set_page_id(*page_id);

  // One injected failure: the bounded-backoff retry loop must absorb it.
  ASSERT_TRUE(registry().Enable("disk.write", "error(hit=1)").ok());
  EXPECT_TRUE(disk.WritePage(page).ok());
  EXPECT_GE(disk.io_retries(), 1u);
  ASSERT_TRUE(disk.Close().ok());
}

TEST_F(FailPointTest, DiskWritePersistentErrorFailsAfterBoundedAttempts) {
  storage::DiskManager disk;
  ASSERT_TRUE(disk.Open(dir_ + "/db").ok());
  auto page_id = disk.AllocatePage();
  ASSERT_TRUE(page_id.ok());
  storage::Page page;
  page.set_page_id(*page_id);

  ASSERT_TRUE(registry().Enable("disk.write", "error").ok());  // every hit
  EXPECT_FALSE(disk.WritePage(page).ok());
  // All attempts consumed the failpoint; the loop is bounded, not infinite.
  EXPECT_LE(registry().fires("disk.write"), 8u);
  registry().DisableAll();
  EXPECT_TRUE(disk.WritePage(page).ok());  // healthy again
  ASSERT_TRUE(disk.Close().ok());
}

TEST_F(FailPointTest, DiskReadAndSyncFailpointsFire) {
  storage::DiskManager disk;
  ASSERT_TRUE(disk.Open(dir_ + "/db").ok());
  auto page_id = disk.AllocatePage();
  ASSERT_TRUE(page_id.ok());

  ASSERT_TRUE(registry().Enable("disk.read", "error(count=0)").ok());
  storage::Page page;
  EXPECT_FALSE(disk.ReadPage(*page_id, &page).ok());
  registry().DisableAll();
  EXPECT_TRUE(disk.ReadPage(*page_id, &page).ok());

  ASSERT_TRUE(registry().Enable("disk.sync", "error").ok());
  EXPECT_FALSE(disk.Sync().ok());
  registry().DisableAll();
  const std::uint64_t before = disk.sync_count();
  EXPECT_TRUE(disk.Sync().ok());
  EXPECT_GT(disk.sync_count(), before);  // real fsync barrier completed
  ASSERT_TRUE(disk.Close().ok());
}

TEST_F(FailPointTest, BufferPoolEvictionFailpointSurfacesError) {
  storage::DiskManager disk;
  ASSERT_TRUE(disk.Open(dir_ + "/db").ok());
  storage::BufferPool pool(&disk, /*capacity=*/2);
  // Fill the pool with dirty pages, then force an eviction under a failing
  // disk: the eviction flush error must surface to the caller.
  for (int i = 0; i < 2; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(pool.UnpinPage((*page)->page_id(), /*dirty=*/true).ok());
  }
  ASSERT_TRUE(registry().Enable("bufferpool.evict", "error").ok());
  EXPECT_FALSE(pool.NewPage().ok());
  registry().DisableAll();
  EXPECT_TRUE(pool.NewPage().ok());
  ASSERT_TRUE(disk.Close().ok());
}

// --- WAL: torn writes, wedging, checksum truncation ------------------------

storage::LogRecord MakeRecord(storage::TxnId txn) {
  storage::LogRecord rec;
  rec.txn_id = txn;
  rec.type = storage::LogRecordType::kUpdate;
  rec.rid = storage::Rid{1, 1};
  rec.before = {1, 2, 3};
  rec.after = {4, 5, 6, 7};
  return rec;
}

TEST_F(FailPointTest, WalInjectedErrorKeepsLsnsDense) {
  storage::LogManager log;
  ASSERT_TRUE(log.Open(dir_ + "/wal").ok());
  ASSERT_TRUE(log.Append(MakeRecord(1)).ok());
  ASSERT_TRUE(registry().Enable("wal.append", "error(hit=1)").ok());
  EXPECT_FALSE(log.Append(MakeRecord(1)).ok());
  registry().DisableAll();
  // A pure injected error writes nothing, so it must not burn an LSN.
  auto lsn = log.Append(MakeRecord(1));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
  EXPECT_FALSE(log.wedged());
  ASSERT_TRUE(log.Close().ok());
}

TEST_F(FailPointTest, WalTornAppendWedgesLogAndReopenTruncates) {
  {
    storage::LogManager log;
    ASSERT_TRUE(log.Open(dir_ + "/wal").ok());
    ASSERT_TRUE(log.Append(MakeRecord(1)).ok());
    ASSERT_TRUE(log.Flush().ok());

    ASSERT_TRUE(registry().Enable("wal.append", "torn(hit=1)").ok());
    EXPECT_FALSE(log.Append(MakeRecord(2)).ok());
    registry().DisableAll();

    // Partial bytes may be on disk: the log refuses to write past them.
    EXPECT_TRUE(log.wedged());
    EXPECT_FALSE(log.Append(MakeRecord(2)).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  storage::LogManager log;
  ASSERT_TRUE(log.Open(dir_ + "/wal").ok());
  EXPECT_GT(log.truncated_bytes(), 0u);  // torn tail chopped off
  EXPECT_FALSE(log.wedged());
  int count = 0;
  ASSERT_TRUE(log.Scan([&](const storage::LogRecord&) {
                   ++count;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(count, 1);  // only the intact record survives
  // The log is writable again and LSNs continue past the good prefix.
  auto lsn = log.Append(MakeRecord(3));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
  ASSERT_TRUE(log.Close().ok());
}

TEST_F(FailPointTest, WalChecksumDetectsBitFlip) {
  const std::string path = dir_ + "/wal";
  long first_record_end = 0;
  {
    storage::LogManager log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(log.Append(MakeRecord(1)).ok());
    ASSERT_TRUE(log.Flush().ok());
    first_record_end = static_cast<long>(std::filesystem::file_size(path));
    ASSERT_TRUE(log.Append(MakeRecord(2)).ok());
    ASSERT_TRUE(log.Append(MakeRecord(2)).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  // Flip one payload byte inside the second record.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, first_record_end + 10, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, first_record_end + 10, SEEK_SET), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  storage::LogManager log;
  ASSERT_TRUE(log.Open(path).ok());
  // Everything from the corrupt record on is discarded — garbage is never
  // replayed, at the cost of losing the (also unreplayable) suffix.
  EXPECT_GT(log.truncated_bytes(), 0u);
  int count = 0;
  ASSERT_TRUE(log.Scan([&](const storage::LogRecord& r) {
                   EXPECT_EQ(r.txn_id, 1u);
                   ++count;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(count, 1);
  ASSERT_TRUE(log.Close().ok());
}

TEST_F(FailPointTest, WalFlushFailpointWedgesLogUntilReopen) {
  const std::string path = dir_ + "/wal";
  storage::LogManager log;
  ASSERT_TRUE(log.Open(path).ok());
  storage::LogRecord commit;
  commit.txn_id = 1;
  commit.type = storage::LogRecordType::kCommit;
  ASSERT_TRUE(registry().Enable("wal.flush", "error(hit=1)").ok());
  EXPECT_FALSE(log.Append(commit).ok());  // commit force hits the failpoint
  registry().DisableAll();
  // fsyncgate containment: after a failed barrier the kernel may have
  // dropped the dirty pages, so a retried fsync proves nothing. The log is
  // wedged — further appends are refused and no fsync is counted — until a
  // reopen re-establishes a trusted tail.
  EXPECT_TRUE(log.wedged());
  EXPECT_FALSE(log.Append(commit).ok());
  EXPECT_EQ(log.sync_count(), 0u);
  EXPECT_EQ(log.durable_lsn(), 0u);
  ASSERT_TRUE(log.Close().ok());

  storage::LogManager reopened;
  ASSERT_TRUE(reopened.Open(path).ok());
  EXPECT_FALSE(reopened.wedged());
  EXPECT_TRUE(reopened.Append(commit).ok());
  EXPECT_GE(reopened.sync_count(), 1u);
  ASSERT_TRUE(reopened.Close().ok());
}

}  // namespace
}  // namespace sentinel
