// OID B+-tree index integration: trusted after clean shutdown, rebuilt after
// a crash, and always consistent with the object heap.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "oodb/database.h"

namespace sentinel::oodb {
namespace {

class OidIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = (std::filesystem::temp_directory_path() /
               ("sentinel_oididx_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                  .string();
    Cleanup();
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    std::remove((prefix_ + ".db").c_str());
    std::remove((prefix_ + ".wal").c_str());
  }
  std::string prefix_;
};

TEST_F(OidIndexTest, CleanShutdownMarksAndReopenTrustsIndex) {
  std::vector<Oid> oids;
  {
    Database db;
    ASSERT_TRUE(db.Open(prefix_).ok());
    EXPECT_FALSE(db.engine()->WasCleanShutdown());  // fresh file
    auto txn = db.Begin();
    for (int i = 0; i < 600; ++i) {  // forces index splits
      PersistentObject obj(kInvalidOid, "Part");
      obj.Set("n", Value::Int(i));
      oids.push_back(*db.objects()->Put(*txn, std::move(obj)));
    }
    ASSERT_TRUE(db.Commit(*txn).ok());
    ASSERT_TRUE(db.Close().ok());
  }
  Database db;
  ASSERT_TRUE(db.Open(prefix_).ok());
  EXPECT_TRUE(db.engine()->WasCleanShutdown());
  EXPECT_EQ(db.objects()->object_count(), 600u);
  auto txn = db.Begin();
  for (int i = 0; i < 600; i += 37) {
    auto obj = db.objects()->Get(*txn, oids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(obj.ok()) << i;
    EXPECT_EQ(obj->Get("n")->AsInt(), i);
  }
  ASSERT_TRUE(db.Commit(*txn).ok());
  ASSERT_TRUE(db.Close().ok());
}

TEST_F(OidIndexTest, CrashTriggersRebuildFromHeap) {
  std::vector<Oid> oids;
  {
    Database db;
    ASSERT_TRUE(db.Open(prefix_).ok());
    auto txn = db.Begin();
    for (int i = 0; i < 50; ++i) {
      PersistentObject obj(kInvalidOid, "Part");
      obj.Set("n", Value::Int(i));
      oids.push_back(*db.objects()->Put(*txn, std::move(obj)));
    }
    ASSERT_TRUE(db.Commit(*txn).ok());
    // Crash: the clean flag stays false and the index pages may never have
    // reached disk.
    db.SimulateCrash();
  }
  Database db;
  ASSERT_TRUE(db.Open(prefix_).ok());
  EXPECT_FALSE(db.engine()->WasCleanShutdown());
  EXPECT_EQ(db.objects()->object_count(), 50u);  // rebuilt from the heap
  auto txn = db.Begin();
  for (std::size_t i = 0; i < oids.size(); ++i) {
    auto obj = db.objects()->Get(*txn, oids[i]);
    ASSERT_TRUE(obj.ok()) << i;
  }
  ASSERT_TRUE(db.Commit(*txn).ok());
  ASSERT_TRUE(db.Close().ok());
}

TEST_F(OidIndexTest, OidCounterRecoveredFromIndexAfterCleanClose) {
  Oid last;
  {
    Database db;
    ASSERT_TRUE(db.Open(prefix_).ok());
    auto txn = db.Begin();
    last = *db.objects()->Put(*txn, PersistentObject(kInvalidOid, "P"));
    ASSERT_TRUE(db.Commit(*txn).ok());
    ASSERT_TRUE(db.Close().ok());
  }
  Database db;
  ASSERT_TRUE(db.Open(prefix_).ok());
  auto txn = db.Begin();
  auto next = db.objects()->Put(*txn, PersistentObject(kInvalidOid, "P"));
  EXPECT_GT(*next, last);
  ASSERT_TRUE(db.Commit(*txn).ok());
  ASSERT_TRUE(db.Close().ok());
}

TEST_F(OidIndexTest, DeletedObjectsLeaveIndexAfterCommit) {
  Database db;
  ASSERT_TRUE(db.Open(prefix_).ok());
  auto txn = db.Begin();
  auto oid = db.objects()->Put(*txn, PersistentObject(kInvalidOid, "P"));
  ASSERT_TRUE(db.Commit(*txn).ok());
  EXPECT_EQ(db.objects()->object_count(), 1u);

  auto txn2 = db.Begin();
  ASSERT_TRUE(db.objects()->Delete(*txn2, *oid).ok());
  // Still counted until commit (overlay only).
  EXPECT_EQ(db.objects()->object_count(), 1u);
  ASSERT_TRUE(db.Commit(*txn2).ok());
  EXPECT_EQ(db.objects()->object_count(), 0u);
  ASSERT_TRUE(db.Close().ok());
}

}  // namespace
}  // namespace sentinel::oodb
