// End-to-end workflow integration: two PERSISTENT active databases, the
// global event detector between them, detached fulfilment rules writing
// durable state, and verification after reopen — the full Fig. 2 scenario.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "core/active_database.h"
#include "core/reactive.h"
#include "ged/global_detector.h"

namespace sentinel {
namespace {

using core::ActiveDatabase;
using core::Reactive;
using detector::EventModifier;
using rules::CouplingMode;
using rules::RuleContext;

class WorkflowIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (std::filesystem::temp_directory_path() /
             ("sentinel_workflow_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    Cleanup();
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    for (const char* suffix : {"_orders.db", "_orders.wal", "_ship.db",
                               "_ship.wal"}) {
      std::remove((base_ + suffix).c_str());
    }
  }
  std::string base_;
};

class Order : public Reactive {
 public:
  Order(ActiveDatabase* db, oodb::Oid oid) : Reactive(db, "Order", oid) {}
  void submit(int id) {
    MethodScope scope(this, "void submit(int id)");
    scope.Param("id", oodb::Value::Int(id));
    scope.EnterBody();
    (void)SetAttr("status", oodb::Value::String("submitted"));
  }
};

class Shipment : public Reactive {
 public:
  Shipment(ActiveDatabase* db, oodb::Oid oid) : Reactive(db, "Shipment", oid) {}
  void dispatch(int id) {
    MethodScope scope(this, "void dispatch(int id)");
    scope.Param("id", oodb::Value::Int(id));
    scope.EnterBody();
  }
};

TEST_F(WorkflowIntegrationTest, CrossAppFulfilmentPersistsDurably) {
  oodb::Oid order_oid = oodb::kInvalidOid;
  {
    ActiveDatabase orders, shipping;
    ASSERT_TRUE(orders.Open(base_ + "_orders").ok());
    ASSERT_TRUE(shipping.Open(base_ + "_ship").ok());
    ASSERT_TRUE(
        orders.database()->classes()->Register(oodb::ClassDef("Order", "")).ok());
    ASSERT_TRUE(shipping.database()
                    ->classes()
                    ->Register(oodb::ClassDef("Shipment", ""))
                    .ok());

    ged::GlobalEventDetector ged;
    ASSERT_TRUE(ged.RegisterApplication("orders", &orders).ok());
    ASSERT_TRUE(ged.RegisterApplication("shipping", &shipping).ok());
    auto submitted = ged.DefineGlobalPrimitive(
        "submitted", "orders", "Order", EventModifier::kEnd,
        "void submit(int id)");
    auto dispatched = ged.DefineGlobalPrimitive(
        "dispatched", "shipping", "Shipment", EventModifier::kEnd,
        "void dispatch(int id)");
    ASSERT_TRUE(submitted.ok());
    ASSERT_TRUE(dispatched.ok());
    ASSERT_TRUE(
        ged.graph()->DefineSeq("fulfilled", *submitted, *dispatched).ok());

    // Detached rule in the orders app: durably mark the order fulfilled in
    // its own top-level transaction.
    ASSERT_TRUE(orders.detector()->DefineExplicit("fulfilment").ok());
    std::atomic<int> fulfilments{0};
    rules::RuleManager::RuleOptions detached;
    detached.coupling = CouplingMode::kDetached;
    ActiveDatabase* orders_ptr = &orders;
    oodb::Oid* oid_ptr = &order_oid;
    ASSERT_TRUE(orders.rule_manager()
                    ->DefineRule(
                        "record", "fulfilment", nullptr,
                        [orders_ptr, oid_ptr, &fulfilments](
                            const RuleContext& ctx) {
                          auto obj = orders_ptr->database()->objects()->Get(
                              ctx.txn, *oid_ptr);
                          if (!obj.ok()) return;
                          obj->Set("status", oodb::Value::String("fulfilled"));
                          (void)orders_ptr->database()->objects()->Put(
                              ctx.txn, std::move(*obj));
                          ++fulfilments;
                        },
                        detached)
                    .ok());
    ASSERT_TRUE(ged.DeliverTo("fulfilled", "orders", "fulfilment").ok());

    // Run the workflow.
    auto otxn = orders.Begin();
    order_oid = *orders.CreateObject(*otxn, "Order", "order-1");
    Order order(&orders, order_oid);
    order.set_current_txn(*otxn);
    order.submit(1);
    ASSERT_TRUE(orders.Commit(*otxn).ok());

    auto stxn = shipping.Begin();
    auto ship_oid = shipping.CreateObject(*stxn, "Shipment");
    Shipment shipment(&shipping, *ship_oid);
    shipment.set_current_txn(*stxn);
    shipment.dispatch(1);
    ASSERT_TRUE(shipping.Commit(*stxn).ok());

    ged.WaitQuiescent();
    orders.scheduler()->WaitDetached();
    EXPECT_EQ(fulfilments, 1);
    ASSERT_TRUE(orders.Close().ok());
    ASSERT_TRUE(shipping.Close().ok());
  }

  // Reopen the orders database: the detached rule's write survived.
  ActiveDatabase reopened;
  ASSERT_TRUE(reopened.Open(base_ + "_orders").ok());
  auto txn = reopened.Begin();
  auto oid = reopened.database()->names()->Lookup(*txn, "order-1");
  ASSERT_TRUE(oid.ok());
  auto obj = reopened.database()->objects()->Get(*txn, *oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->Get("status")->AsString(), "fulfilled");
  ASSERT_TRUE(reopened.Commit(*txn).ok());
  ASSERT_TRUE(reopened.Close().ok());
}

}  // namespace
}  // namespace sentinel
