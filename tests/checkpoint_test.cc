// Quiescent checkpointing: log truncation bounds recovery work while
// preserving correctness across crashes before and after the checkpoint.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "storage/storage_engine.h"

namespace sentinel::storage {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}
std::string Str(const std::vector<std::uint8_t>& b) {
  return std::string(b.begin(), b.end());
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = (std::filesystem::temp_directory_path() /
               ("sentinel_ckpt_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                  .string();
    Cleanup();
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    std::remove((prefix_ + ".db").c_str());
    std::remove((prefix_ + ".wal").c_str());
  }
  std::size_t WalSize() {
    return std::filesystem::file_size(prefix_ + ".wal");
  }
  std::string prefix_;
};

TEST_F(CheckpointTest, TruncatesLog) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Open(prefix_).ok());
  auto file = engine.CreateHeapFile();
  for (int t = 0; t < 20; ++t) {
    auto txn = engine.Begin();
    for (int i = 0; i < 10; ++i) {
      (void)engine.Insert(*txn, *file, Bytes("record"));
    }
    ASSERT_TRUE(engine.Commit(*txn).ok());
  }
  ASSERT_TRUE(engine.log_manager()->Flush().ok());
  const std::size_t before = WalSize();
  ASSERT_TRUE(engine.Checkpoint().ok());
  const std::size_t after = WalSize();
  EXPECT_LT(after, before / 10);  // only the checkpoint record remains
  ASSERT_TRUE(engine.Close().ok());
}

TEST_F(CheckpointTest, RefusedWithActiveTransactions) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Open(prefix_).ok());
  auto txn = engine.Begin();
  EXPECT_TRUE(engine.Checkpoint().IsInvalidArgument());
  ASSERT_TRUE(engine.Commit(*txn).ok());
  EXPECT_TRUE(engine.Checkpoint().ok());
  ASSERT_TRUE(engine.Close().ok());
}

TEST_F(CheckpointTest, CrashAfterCheckpointRecoversCorrectly) {
  Rid pre_rid, post_rid;
  PageId file;
  {
    StorageEngine engine;
    ASSERT_TRUE(engine.Open(prefix_).ok());
    file = *engine.CreateHeapFile();
    auto txn = engine.Begin();
    pre_rid = *engine.Insert(*txn, file, Bytes("pre-checkpoint"));
    ASSERT_TRUE(engine.Commit(*txn).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());

    auto txn2 = engine.Begin();
    post_rid = *engine.Insert(*txn2, file, Bytes("post-checkpoint"));
    ASSERT_TRUE(engine.Commit(*txn2).ok());
    engine.SimulateCrash();
  }
  StorageEngine recovered;
  ASSERT_TRUE(recovered.Open(prefix_).ok());
  auto txn = recovered.Begin();
  EXPECT_EQ(Str(*recovered.Read(*txn, file, pre_rid)), "pre-checkpoint");
  EXPECT_EQ(Str(*recovered.Read(*txn, file, post_rid)), "post-checkpoint");
  ASSERT_TRUE(recovered.Commit(*txn).ok());
  ASSERT_TRUE(recovered.Close().ok());
}

TEST_F(CheckpointTest, LsnSequenceSurvivesTruncation) {
  // Page LSNs stamped before the checkpoint must stay comparable with log
  // records written after it — otherwise post-checkpoint redo would be
  // skipped. Verified behaviourally: update a pre-checkpoint record after
  // the checkpoint, crash, and expect the update to be redone.
  Rid rid;
  PageId file;
  {
    StorageEngine engine;
    ASSERT_TRUE(engine.Open(prefix_).ok());
    file = *engine.CreateHeapFile();
    auto txn = engine.Begin();
    rid = *engine.Insert(*txn, file, Bytes("v1"));
    ASSERT_TRUE(engine.Commit(*txn).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());

    auto txn2 = engine.Begin();
    ASSERT_TRUE(engine.Update(*txn2, file, rid, Bytes("v2")).ok());
    ASSERT_TRUE(engine.Commit(*txn2).ok());
    engine.SimulateCrash();
  }
  StorageEngine recovered;
  ASSERT_TRUE(recovered.Open(prefix_).ok());
  auto txn = recovered.Begin();
  EXPECT_EQ(Str(*recovered.Read(*txn, file, rid)), "v2");
  ASSERT_TRUE(recovered.Commit(*txn).ok());
  ASSERT_TRUE(recovered.Close().ok());
}

TEST_F(CheckpointTest, RepeatedCheckpointsAreIdempotent) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Open(prefix_).ok());
  auto file = engine.CreateHeapFile();
  for (int round = 0; round < 5; ++round) {
    auto txn = engine.Begin();
    (void)engine.Insert(*txn, *file, Bytes("r" + std::to_string(round)));
    ASSERT_TRUE(engine.Commit(*txn).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  auto txn = engine.Begin();
  int count = 0;
  ASSERT_TRUE(engine
                  .Scan(*txn, *file,
                        [&](const Rid&, const std::vector<std::uint8_t>&) {
                          ++count;
                          return Status::OK();
                        })
                  .ok());
  EXPECT_EQ(count, 5);
  ASSERT_TRUE(engine.Commit(*txn).ok());
  ASSERT_TRUE(engine.Close().ok());
}

}  // namespace
}  // namespace sentinel::storage
