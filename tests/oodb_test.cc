#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "oodb/database.h"
#include "oodb/object.h"
#include "oodb/schema.h"
#include "oodb/value.h"

namespace sentinel::oodb {
namespace {

// ---- Value ---------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int(-3).AsInt(), -3);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::String("s").AsString(), "s");
  EXPECT_EQ(Value::OfOid(9).AsOid(), 9u);
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_FALSE(Value::Int(5) == Value::Int(6));
  EXPECT_FALSE(Value::Int(5) == Value::Double(5.0));  // type-sensitive
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, AsNumberCoercesIntAndDouble) {
  EXPECT_DOUBLE_EQ(*Value::Int(4).AsNumber(), 4.0);
  EXPECT_DOUBLE_EQ(*Value::Double(2.5).AsNumber(), 2.5);
  EXPECT_TRUE(Value::String("x").AsNumber().status().IsTypeMismatch());
}

TEST(ValueTest, SerializationRoundTrip) {
  const Value values[] = {Value::Null(),         Value::Bool(false),
                          Value::Int(-77),       Value::Double(0.125),
                          Value::String("text"), Value::OfOid(123)};
  for (const Value& v : values) {
    BytesWriter w;
    v.Serialize(&w);
    BytesReader r(w.data());
    auto back = Value::Deserialize(&r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v) << v.ToString();
  }
}

TEST(ValueTest, ToStringIsReadable) {
  EXPECT_EQ(Value::Int(3).ToString(), "3");
  EXPECT_EQ(Value::String("a").ToString(), "\"a\"");
  EXPECT_EQ(Value::OfOid(4).ToString(), "oid:4");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Null().ToString(), "null");
}

// ---- Schema --------------------------------------------------------------------

TEST(SchemaTest, RegisterAndInheritance) {
  ClassRegistry reg;
  ASSERT_TRUE(reg.Register(ClassDef("Base", "")
                               .AddAttribute("id", ValueType::kInt)
                               .AddMethod("void touch()"))
                  .ok());
  ASSERT_TRUE(reg.Register(ClassDef("Mid", "Base")
                               .AddAttribute("name", ValueType::kString))
                  .ok());
  ASSERT_TRUE(reg.Register(ClassDef("Leaf", "Mid")).ok());

  EXPECT_TRUE(reg.IsSubclassOf("Leaf", "Base"));
  EXPECT_TRUE(reg.IsSubclassOf("Leaf", "Leaf"));
  EXPECT_FALSE(reg.IsSubclassOf("Base", "Leaf"));
  EXPECT_FALSE(reg.IsSubclassOf("Unknown", "Base"));

  // Method resolution walks the chain.
  EXPECT_TRUE(reg.ResolveMethod("Leaf", "void touch()").ok());
  EXPECT_TRUE(reg.ResolveMethod("Leaf", "void nope()").status().IsNotFound());

  // Attribute collection is base-first.
  auto attrs = reg.AllAttributes("Leaf");
  ASSERT_TRUE(attrs.ok());
  ASSERT_EQ(attrs->size(), 2u);
  EXPECT_EQ((*attrs)[0].name, "id");
  EXPECT_EQ((*attrs)[1].name, "name");
}

TEST(SchemaTest, DuplicateAndMissingBaseRejected) {
  ClassRegistry reg;
  ASSERT_TRUE(reg.Register(ClassDef("A", "")).ok());
  EXPECT_TRUE(reg.Register(ClassDef("A", "")).IsAlreadyExists());
  EXPECT_TRUE(reg.Register(ClassDef("B", "Ghost")).IsNotFound());
}

// ---- PersistentObject -------------------------------------------------------------

TEST(PersistentObjectTest, SerializationRoundTrip) {
  PersistentObject obj(42, "Stock");
  obj.Set("price", Value::Double(99.5));
  obj.Set("symbol", Value::String("IBM"));
  BytesWriter w;
  obj.Serialize(&w);
  BytesReader r(w.data());
  auto back = PersistentObject::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->oid(), 42u);
  EXPECT_EQ(back->class_name(), "Stock");
  EXPECT_DOUBLE_EQ(back->Get("price")->AsDouble(), 99.5);
  EXPECT_EQ(back->Get("symbol")->AsString(), "IBM");
  EXPECT_TRUE(back->Get("ghost").status().IsNotFound());
}

// ---- Database / persistence + names -----------------------------------------------

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = (std::filesystem::temp_directory_path() /
               ("sentinel_oodb_test_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                  .string();
    Cleanup();
    ASSERT_TRUE(db_.Open(prefix_).ok());
  }
  void TearDown() override {
    (void)db_.Close();
    Cleanup();
  }
  void Cleanup() {
    std::remove((prefix_ + ".db").c_str());
    std::remove((prefix_ + ".wal").c_str());
  }
  std::string prefix_;
  Database db_;
};

TEST_F(DatabaseTest, PutGetDeleteObject) {
  auto txn = db_.Begin();
  PersistentObject obj(kInvalidOid, "Stock");
  obj.Set("price", Value::Double(10.0));
  auto oid = db_.objects()->Put(*txn, std::move(obj));
  ASSERT_TRUE(oid.ok());
  EXPECT_NE(*oid, kInvalidOid);

  auto got = db_.objects()->Get(*txn, *oid);
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got->Get("price")->AsDouble(), 10.0);

  ASSERT_TRUE(db_.objects()->Delete(*txn, *oid).ok());
  EXPECT_TRUE(db_.objects()->Get(*txn, *oid).status().IsNotFound());
  ASSERT_TRUE(db_.Commit(*txn).ok());
}

TEST_F(DatabaseTest, UpdatePreservesOid) {
  auto txn = db_.Begin();
  PersistentObject obj(kInvalidOid, "Stock");
  obj.Set("v", Value::Int(1));
  auto oid = db_.objects()->Put(*txn, std::move(obj));
  auto loaded = db_.objects()->Get(*txn, *oid);
  loaded->Set("v", Value::Int(2));
  auto oid2 = db_.objects()->Put(*txn, std::move(*loaded));
  ASSERT_TRUE(oid2.ok());
  EXPECT_EQ(*oid2, *oid);
  EXPECT_EQ(db_.objects()->Get(*txn, *oid)->Get("v")->AsInt(), 2);
  ASSERT_TRUE(db_.Commit(*txn).ok());
}

TEST_F(DatabaseTest, AbortedPutIsInvisible) {
  auto txn = db_.Begin();
  PersistentObject obj(kInvalidOid, "Stock");
  auto oid = db_.objects()->Put(*txn, std::move(obj));
  ASSERT_TRUE(oid.ok());
  EXPECT_TRUE(db_.objects()->Exists(*txn, *oid));
  ASSERT_TRUE(db_.Abort(*txn).ok());

  auto txn2 = db_.Begin();
  EXPECT_FALSE(db_.objects()->Exists(*txn2, *oid));
  ASSERT_TRUE(db_.Commit(*txn2).ok());
}

TEST_F(DatabaseTest, ScanClassFilters) {
  auto txn = db_.Begin();
  for (int i = 0; i < 3; ++i) {
    PersistentObject s(kInvalidOid, "Stock");
    (void)db_.objects()->Put(*txn, std::move(s));
  }
  PersistentObject b(kInvalidOid, "Bond");
  (void)db_.objects()->Put(*txn, std::move(b));
  ASSERT_TRUE(db_.Commit(*txn).ok());

  auto txn2 = db_.Begin();
  int stocks = 0, all = 0;
  ASSERT_TRUE(db_.objects()
                  ->ScanClass(*txn2, "Stock",
                              [&](const PersistentObject&) {
                                ++stocks;
                                return Status::OK();
                              })
                  .ok());
  ASSERT_TRUE(db_.objects()
                  ->ScanClass(*txn2, "",
                              [&](const PersistentObject&) {
                                ++all;
                                return Status::OK();
                              })
                  .ok());
  EXPECT_EQ(stocks, 3);
  EXPECT_EQ(all, 4);
  ASSERT_TRUE(db_.Commit(*txn2).ok());
}

TEST_F(DatabaseTest, NameBindings) {
  auto txn = db_.Begin();
  ASSERT_TRUE(db_.names()->Bind(*txn, "IBM", 7).ok());
  EXPECT_EQ(*db_.names()->Lookup(*txn, "IBM"), 7u);
  ASSERT_TRUE(db_.names()->Bind(*txn, "IBM", 8).ok());  // rebind
  EXPECT_EQ(*db_.names()->Lookup(*txn, "IBM"), 8u);
  ASSERT_TRUE(db_.names()->Unbind(*txn, "IBM").ok());
  EXPECT_TRUE(db_.names()->Lookup(*txn, "IBM").status().IsNotFound());
  EXPECT_TRUE(db_.names()->Unbind(*txn, "IBM").IsNotFound());
  ASSERT_TRUE(db_.Commit(*txn).ok());
}

TEST_F(DatabaseTest, ObjectsAndNamesSurviveReopen) {
  oodb::Oid oid;
  {
    auto txn = db_.Begin();
    PersistentObject obj(kInvalidOid, "Stock");
    obj.Set("price", Value::Double(55.0));
    oid = *db_.objects()->Put(*txn, std::move(obj));
    ASSERT_TRUE(db_.names()->Bind(*txn, "IBM", oid).ok());
    ASSERT_TRUE(db_.Commit(*txn).ok());
    ASSERT_TRUE(db_.Close().ok());
  }
  Database reopened;
  ASSERT_TRUE(reopened.Open(prefix_).ok());
  auto txn = reopened.Begin();
  EXPECT_EQ(*reopened.names()->Lookup(*txn, "IBM"), oid);
  auto obj = reopened.objects()->Get(*txn, oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_DOUBLE_EQ(obj->Get("price")->AsDouble(), 55.0);
  EXPECT_EQ(reopened.objects()->object_count(), 1u);
  EXPECT_EQ(reopened.names()->binding_count(), 1u);
  ASSERT_TRUE(reopened.Commit(*txn).ok());
  ASSERT_TRUE(reopened.Close().ok());
}

TEST_F(DatabaseTest, OidsAreNeverReusedAcrossRestart) {
  oodb::Oid first;
  {
    auto txn = db_.Begin();
    first = *db_.objects()->Put(*txn, PersistentObject(kInvalidOid, "S"));
    ASSERT_TRUE(db_.Commit(*txn).ok());
    ASSERT_TRUE(db_.Close().ok());
  }
  Database reopened;
  ASSERT_TRUE(reopened.Open(prefix_).ok());
  auto txn = reopened.Begin();
  auto second = reopened.objects()->Put(*txn, PersistentObject(kInvalidOid, "S"));
  EXPECT_GT(*second, first);
  ASSERT_TRUE(reopened.Commit(*txn).ok());
  ASSERT_TRUE(reopened.Close().ok());
}

}  // namespace
}  // namespace sentinel::oodb
