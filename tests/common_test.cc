#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"

namespace sentinel {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesMapToPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::TransactionAborted("x").IsTransactionAborted());
  EXPECT_TRUE(Status::Deadlock("x").IsDeadlock());
  EXPECT_TRUE(Status::LockTimeout("x").IsLockTimeout());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::TypeMismatch("x").IsTypeMismatch());
}

TEST(StatusTest, CopySharesState) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_TRUE(b.code() == StatusCode::kInternal);
  EXPECT_EQ(b.message(), "boom");
}

Status ReturnsNotOk() {
  SENTINEL_RETURN_NOT_OK(Status::IOError("disk on fire"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(ReturnsNotOk().IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "payload");
}

TEST(BytesTest, ScalarRoundTrip) {
  BytesWriter w;
  w.PutU8(7);
  w.PutU16(1000);
  w.PutU32(70000);
  w.PutU64(1ull << 40);
  w.PutI32(-5);
  w.PutI64(-12345678901234);
  w.PutF64(3.25);
  w.PutBool(true);
  w.PutString("hello");

  BytesReader r(w.data());
  EXPECT_EQ(*r.ReadU8(), 7);
  EXPECT_EQ(*r.ReadU16(), 1000);
  EXPECT_EQ(*r.ReadU32(), 70000u);
  EXPECT_EQ(*r.ReadU64(), 1ull << 40);
  EXPECT_EQ(*r.ReadI32(), -5);
  EXPECT_EQ(*r.ReadI64(), -12345678901234);
  EXPECT_DOUBLE_EQ(*r.ReadF64(), 3.25);
  EXPECT_TRUE(*r.ReadBool());
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, ReadPastEndIsCorruption) {
  BytesWriter w;
  w.PutU8(1);
  BytesReader r(w.data());
  EXPECT_TRUE(r.ReadU32().status().IsCorruption());
}

TEST(BytesTest, TruncatedStringIsCorruption) {
  BytesWriter w;
  w.PutU32(100);  // promises 100 bytes
  w.PutU8('x');
  BytesReader r(w.data());
  EXPECT_TRUE(r.ReadString().status().IsCorruption());
}

TEST(BytesTest, EmptyString) {
  BytesWriter w;
  w.PutString("");
  BytesReader r(w.data());
  EXPECT_EQ(*r.ReadString(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(ClockTest, TickIsStrictlyIncreasing) {
  LogicalClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  Timestamp prev = 0;
  for (int i = 0; i < 100; ++i) {
    Timestamp t = clock.Tick();
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_EQ(clock.Now(), prev);
}

TEST(ClockTest, WitnessAdvances) {
  LogicalClock clock;
  clock.Witness(500);
  EXPECT_EQ(clock.Now(), 500u);
  EXPECT_EQ(clock.Tick(), 501u);
  clock.Witness(100);  // never goes backwards
  EXPECT_GE(clock.Now(), 501u);
}

TEST(ClockTest, ConcurrentTicksAreUnique) {
  LogicalClock clock;
  constexpr int kThreads = 4;
  constexpr int kTicks = 1000;
  std::vector<std::vector<Timestamp>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock, &seen, t] {
      for (int i = 0; i < kTicks; ++i) seen[t].push_back(clock.Tick());
    });
  }
  for (auto& t : threads) t.join();
  std::vector<Timestamp> all;
  for (const auto& v : seen) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kTicks));
}

}  // namespace
}  // namespace sentinel
