#include "storage/heap_file.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace sentinel::storage {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("sentinel_heap_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".db"))
                .string();
    std::remove(path_.c_str());
    ASSERT_TRUE(disk_.Open(path_).ok());
    pool_ = std::make_unique<BufferPool>(&disk_, 16);
    auto head = HeapFile::Create(pool_.get());
    ASSERT_TRUE(head.ok());
    heap_ = std::make_unique<HeapFile>(pool_.get(), *head);
  }
  void TearDown() override {
    heap_.reset();
    pool_.reset();
    (void)disk_.Close();
    std::remove(path_.c_str());
  }

  static std::vector<std::uint8_t> Rec(const std::string& s) {
    return std::vector<std::uint8_t>(s.begin(), s.end());
  }

  std::string path_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapFile> heap_;
};

TEST_F(HeapFileTest, InsertReadUpdateDelete) {
  auto rid = heap_->Insert(Rec("alpha"));
  ASSERT_TRUE(rid.ok());
  auto first = heap_->Read(*rid);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(std::string(first->begin(), first->end()), "alpha");
  ASSERT_TRUE(heap_->Update(*rid, Rec("beta")).ok());
  auto read = heap_->Read(*rid);
  EXPECT_EQ(std::string(read->begin(), read->end()), "beta");
  ASSERT_TRUE(heap_->Delete(*rid).ok());
  EXPECT_TRUE(heap_->Read(*rid).status().IsNotFound());
}

TEST_F(HeapFileTest, ChainGrowsAcrossPagesAndScansInOrder) {
  std::vector<Rid> rids;
  const std::string big(1500, 'x');  // ~2.7 records per 4K page
  for (int i = 0; i < 10; ++i) {
    auto rid = heap_->Insert(Rec(big + std::to_string(i)));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  EXPECT_GT(rids.back().page_id, rids.front().page_id);
  int count = 0;
  ASSERT_TRUE(heap_->Scan([&](const Rid&, const std::vector<std::uint8_t>&) {
                     ++count;
                     return Status::OK();
                   })
                  .ok());
  EXPECT_EQ(count, 10);
}

TEST_F(HeapFileTest, LinkLoggerObservesChainExtension) {
  std::vector<std::pair<PageId, PageId>> links;
  HeapFile logged(pool_.get(), heap_->head_page_id(),
                  [&links](PageId parent, PageId next) {
                    links.emplace_back(parent, next);
                    return Status::OK();
                  });
  const std::string big(2000, 'y');
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(logged.Insert(Rec(big)).ok());
  }
  ASSERT_FALSE(links.empty());
  // Links form a chain starting at the head page.
  EXPECT_EQ(links[0].first, heap_->head_page_id());
  for (std::size_t i = 1; i < links.size(); ++i) {
    EXPECT_EQ(links[i].first, links[i - 1].second);
  }
}

TEST_F(HeapFileTest, InsertAtRestoresTombstonedSlot) {
  auto rid = heap_->Insert(Rec("victim"));
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(heap_->Delete(*rid).ok());
  ASSERT_TRUE(heap_->InsertAt(*rid, Rec("restored")).ok());
  auto read = heap_->Read(*rid);
  EXPECT_EQ(std::string(read->begin(), read->end()), "restored");
}

TEST_F(HeapFileTest, ScanSkipsDeleted) {
  auto a = heap_->Insert(Rec("a"));
  auto b = heap_->Insert(Rec("b"));
  auto c = heap_->Insert(Rec("c"));
  ASSERT_TRUE(heap_->Delete(*b).ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(heap_->Scan([&](const Rid&, const std::vector<std::uint8_t>& rec) {
                     seen.emplace_back(rec.begin(), rec.end());
                     return Status::OK();
                   })
                  .ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "c"}));
  (void)a;
  (void)c;
}

TEST_F(HeapFileTest, OversizedRecordRejected) {
  std::vector<std::uint8_t> huge(SlottedPage::kMaxRecordSize + 1, 0);
  EXPECT_TRUE(heap_->Insert(huge).status().IsInvalidArgument());
}

TEST_F(HeapFileTest, SetPageLsnOnlyIncreases) {
  auto rid = heap_->Insert(Rec("z"));
  ASSERT_TRUE(heap_->SetPageLsn(rid->page_id, 10).ok());
  ASSERT_TRUE(heap_->SetPageLsn(rid->page_id, 5).ok());  // no-op
  auto page = pool_->FetchPage(rid->page_id);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)->lsn(), 10u);
  (void)pool_->UnpinPage(rid->page_id, false);
}

}  // namespace
}  // namespace sentinel::storage
