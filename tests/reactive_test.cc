// Reactive::MethodScope — the hand-written equivalent of the post-processed
// wrapper (paper §3.2.1): parameter collection, begin/end signalling order,
// and persistent attribute access through the object cache.

#include "core/reactive.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <vector>

namespace sentinel::core {
namespace {

using detector::EventModifier;
using rules::RuleContext;

class ReactiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = (std::filesystem::temp_directory_path() /
               ("sentinel_reactive_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                  .string();
    Cleanup();
    ASSERT_TRUE(db_.Open(prefix_).ok());
    ASSERT_TRUE(db_.database()
                    ->classes()
                    ->Register(oodb::ClassDef("Widget", "").AddAttribute(
                        "count", oodb::ValueType::kInt))
                    .ok());
  }
  void TearDown() override {
    (void)db_.Close();
    Cleanup();
  }
  void Cleanup() {
    std::remove((prefix_ + ".db").c_str());
    std::remove((prefix_ + ".wal").c_str());
  }

  std::string prefix_;
  ActiveDatabase db_;
};

class Widget : public Reactive {
 public:
  Widget(ActiveDatabase* db, oodb::Oid oid) : Reactive(db, "Widget", oid) {}

  void poke(int amount, bool enter_body) {
    MethodScope scope(this, "void poke(int amount)");
    scope.Param("amount", oodb::Value::Int(amount));
    if (enter_body) scope.EnterBody();
  }
};

TEST_F(ReactiveTest, BeginAndEndCarrySameParamList) {
  ASSERT_TRUE(db_.DeclareEvent("poke_begin", "Widget", EventModifier::kBegin,
                               "void poke(int amount)")
                  .ok());
  ASSERT_TRUE(db_.DeclareEvent("poke_end", "Widget", EventModifier::kEnd,
                               "void poke(int amount)")
                  .ok());
  std::vector<std::pair<std::string, std::int64_t>> seen;
  for (const char* rule : {"poke_begin", "poke_end"}) {
    ASSERT_TRUE(db_.rule_manager()
                    ->DefineRule(std::string("on_") + rule, rule, nullptr,
                                 [&seen, rule](const RuleContext& ctx) {
                                   seen.emplace_back(
                                       rule, ctx.Param("amount")->AsInt());
                                 })
                    .ok());
  }
  auto txn = db_.Begin();
  auto oid = db_.CreateObject(*txn, "Widget");
  Widget w(&db_, *oid);
  w.set_current_txn(*txn);
  w.poke(42, /*enter_body=*/true);
  ASSERT_TRUE(db_.Commit(*txn).ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::string, std::int64_t>("poke_begin", 42)));
  EXPECT_EQ(seen[1], (std::pair<std::string, std::int64_t>("poke_end", 42)));
}

TEST_F(ReactiveTest, NoEnterBodyMeansNoEvents) {
  // A scope whose body is never entered (e.g. an early-out before the
  // original method runs) must signal neither begin nor end.
  ASSERT_TRUE(db_.DeclareEvent("poke_end", "Widget", EventModifier::kEnd,
                               "void poke(int amount)")
                  .ok());
  std::atomic<int> fired{0};
  ASSERT_TRUE(db_.rule_manager()
                  ->DefineRule("r", "poke_end", nullptr,
                               [&](const RuleContext&) { ++fired; })
                  .ok());
  auto txn = db_.Begin();
  auto oid = db_.CreateObject(*txn, "Widget");
  Widget w(&db_, *oid);
  w.set_current_txn(*txn);
  w.poke(1, /*enter_body=*/false);
  ASSERT_TRUE(db_.Commit(*txn).ok());
  EXPECT_EQ(fired, 0);
}

TEST_F(ReactiveTest, AttrAccessorsRoundTripThroughCache) {
  auto txn = db_.Begin();
  auto oid = db_.CreateObject(*txn, "Widget");
  Widget w(&db_, *oid);
  w.set_current_txn(*txn);
  EXPECT_TRUE(w.GetAttr("count").status().IsNotFound());  // never set
  ASSERT_TRUE(w.SetAttr("count", oodb::Value::Int(5)).ok());
  EXPECT_EQ(w.GetAttr("count")->AsInt(), 5);
  ASSERT_TRUE(w.SetAttr("count", oodb::Value::Int(6)).ok());
  EXPECT_EQ(w.GetAttr("count")->AsInt(), 6);
  ASSERT_TRUE(db_.Commit(*txn).ok());
  EXPECT_GT(db_.object_cache()->hit_count(), 0u);
}

TEST_F(ReactiveTest, AttrAccessWithoutStoreFails) {
  ActiveDatabase mem;
  ASSERT_TRUE(mem.OpenInMemory().ok());
  Widget w(&mem, 1);
  EXPECT_TRUE(w.GetAttr("x").status().IsInvalidArgument());
  EXPECT_TRUE(w.SetAttr("x", oodb::Value::Int(1)).IsInvalidArgument());
  ASSERT_TRUE(mem.Close().ok());
}

}  // namespace
}  // namespace sentinel::core
