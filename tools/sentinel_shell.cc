// sentinel_shell — interactive / scriptable driver for a Sentinel database.
//
// Lets you open a database, load event/rule specifications, fire events and
// watch rules execute, without writing C++. Reads commands from stdin (one
// per line), so it doubles as a scripting harness:
//
//   $ ./build/tools/sentinel_shell <<'EOF'
//   memory
//   load examples/specs/stock.spec
//   begin
//   notify STOCK 1 end int sell_stock(int qty) | qty=500
//   commit
//   trace
//   EOF
//
// Built-in rule functions available to specs: condition `true`; actions
// `print` (dump the triggering occurrence) and `none`.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/active_database.h"
#include "debug/rule_debugger.h"
#include "ged/global_detector.h"
#include "net/event_bus_server.h"
#include "net/remote_client.h"
#include "preproc/compiler.h"

namespace {

using sentinel::Status;
using sentinel::core::ActiveDatabase;
using sentinel::detector::EventModifier;
using sentinel::detector::ParamList;
using sentinel::oodb::Value;
using sentinel::rules::RuleContext;

struct Shell {
  ActiveDatabase db;
  sentinel::preproc::FunctionRegistry functions;
  sentinel::debug::RuleDebugger debugger;
  sentinel::storage::TxnId txn = sentinel::storage::kInvalidTxnId;
  bool open = false;

  // GED event-bus plane (`ged serve` / `ged connect`). Declaration order
  // matters: the client must die before the server, the server before the
  // detector it feeds.
  std::unique_ptr<sentinel::ged::GlobalEventDetector> ged;
  std::unique_ptr<sentinel::net::EventBusServer> bus;
  std::unique_ptr<sentinel::net::RemoteGedClient> remote;

  Shell() {
    functions.RegisterAction("print", [](const RuleContext& ctx) {
      std::printf("  [rule] triggered by %s:",
                  ctx.occurrence->event_name.c_str());
      for (const auto& constituent : ctx.occurrence->constituents) {
        if (constituent->params == nullptr) continue;
        for (const auto& [name, value] : *constituent->params) {
          std::printf(" %s=%s", name.c_str(), value.ToString().c_str());
        }
      }
      std::printf("\n");
    });
  }
};

std::vector<std::string> Split(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> words;
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

/// Parses trailing "k=v" pairs into a ParamList (ints, doubles, strings).
std::shared_ptr<ParamList> ParseParams(const std::vector<std::string>& words,
                                       std::size_t from) {
  auto params = std::make_shared<ParamList>();
  for (std::size_t i = from; i < words.size(); ++i) {
    auto eq = words[i].find('=');
    if (eq == std::string::npos) continue;
    const std::string key = words[i].substr(0, eq);
    const std::string value = words[i].substr(eq + 1);
    char* end = nullptr;
    const long long as_int = std::strtoll(value.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && !value.empty()) {
      params->Insert(key, Value::Int(as_int));
      continue;
    }
    const double as_double = std::strtod(value.c_str(), &end);
    if (end != nullptr && *end == '\0' && !value.empty()) {
      params->Insert(key, Value::Double(as_double));
      continue;
    }
    params->Insert(key, Value::String(value));
  }
  return params;
}

void PrintHelp() {
  std::printf(R"(commands:
  open <path>              open (or create) a persistent database
  memory                   open an in-memory (detector-only) database
  load <file>              load a Sentinel spec file
  spec <inline spec...>    load an inline spec (single line)
  begin | commit | abort   transaction control
  durability [sync|async]  show or set commit durability: sync blocks on the
                           WAL group-commit barrier, async acks on buffer
                           write (watermark converges in the background)
  notify <class> <oid> <begin|end> <signature...> [| k=v ...]
  raise <event> [k=v ...]  raise an explicit event
  advance <ms>             advance the temporal clock
  events | rules           list definitions
  enable <rule> | disable <rule>
  stats                    pipeline metrics snapshot (JSON)
  serve [<port>|stop]      start the monitor endpoint (default port 9464;
                           0 = ephemeral) with the health watchdog
  health                   health verdict from the watchdog (JSON)
  metrics                  Prometheus text exposition (what /metrics serves)
  profile start|stop|reset continuous profiler control (cost attribution,
                           contention sites, sampled stacks)
  profile top              top rules by attributed cost + contended sites
  profile export [file]    /profile JSON, or folded stacks to <file>
                           (flamegraph.pl / inferno input)
  trace [on|off|txn <id>]  provenance trace: toggle, dump (JSON), or drain one txn
  trace span <off|flight|full>       set the causal span tracer mode
  trace export <path>      write buffered spans as Chrome trace JSON (Perfetto)
  postmortem [<path>]      crash postmortem: print JSON, or write it to <path>
  rtrace                   print the rule debugger trace
  dot                      print the event graph in DOT (with counters)
  failpoint list                     show armed failpoints
  failpoint set <name> <spec>        arm one, e.g.: failpoint set wal.append error(hit=2)
  failpoint clear [<name>]           disarm one (or all)
  ged serve [<port>]       run a GED event-bus daemon (default 9475; 0 = ephemeral)
  ged connect <port> <app> join a remote GED as application <app>
  ged define <event> <class> <begin|end> <signature...>
                           declare a global primitive mirroring <app>'s events
  ged subscribe <event> [recent|chronicle|continuous|cumulative]
                           stream detections of a global event to this shell
  ged notify <class> <oid> <begin|end> <signature...> [| k=v ...]
                           send one occurrence to the remote GED
  ged stats                daemon/client counters (JSON)
  ged stop                 tear the daemon/client down
  help | quit
)");
}

int Run() {
  Shell shell;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto words = Split(line);
    if (words.empty()) continue;
    const std::string& cmd = words[0];
    Status st;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
      continue;
    }
    if (cmd == "open" && words.size() >= 2) {
      st = shell.db.Open(words[1]);
      if (st.ok()) {
        shell.debugger.Attach(&shell.db);
        shell.open = true;
      }
    } else if (cmd == "memory") {
      st = shell.db.OpenInMemory();
      if (st.ok()) {
        shell.debugger.Attach(&shell.db);
        shell.open = true;
      }
    } else if (cmd == "failpoint") {
      // Interactive fault drills: arm/disarm injection points while driving
      // a live database (works with or without one open).
      auto& registry = sentinel::FailPointRegistry::Instance();
      const std::string sub = words.size() >= 2 ? words[1] : "list";
      if (sub == "list") {
        auto infos = registry.List();
        if (infos.empty()) std::printf("  (no failpoints armed)\n");
        for (const auto& info : infos) {
          std::printf("  %s = %s  [hits %llu, fired %llu]\n",
                      info.name.c_str(), info.spec.ToString().c_str(),
                      static_cast<unsigned long long>(info.hits),
                      static_cast<unsigned long long>(info.fires));
        }
      } else if (sub == "set" && words.size() >= 4) {
        st = registry.Enable(words[2], words[3]);
      } else if (sub == "clear") {
        if (words.size() >= 3) {
          if (!registry.Disable(words[2])) {
            std::printf("error: no such failpoint '%s'\n", words[2].c_str());
          }
        } else {
          registry.DisableAll();
        }
      } else {
        std::printf("usage: failpoint list | set <name> <spec> | clear "
                    "[<name>]\n");
      }
    } else if (cmd == "ged") {
      // Networked GED plane: works with or without a database open.
      const std::string sub = words.size() >= 2 ? words[1] : "";
      if (sub == "serve") {
        const int port =
            words.size() >= 3
                ? static_cast<int>(std::strtol(words[2].c_str(), nullptr, 10))
                : 9475;
        if (shell.bus != nullptr) {
          std::printf("error: daemon already running on port %d\n",
                      shell.bus->port());
          continue;
        }
        if (shell.ged == nullptr) {
          shell.ged = std::make_unique<sentinel::ged::GlobalEventDetector>();
        }
        shell.bus =
            std::make_unique<sentinel::net::EventBusServer>(shell.ged.get());
        sentinel::net::EventBusServer::Options options;
        options.port = port;
        st = shell.bus->Start(options);
        if (st.ok()) {
          if (shell.open) shell.db.AttachEventBusServer(shell.bus.get());
          std::printf("GED event bus listening on 127.0.0.1:%d\n",
                      shell.bus->port());
        } else {
          shell.bus.reset();
        }
      } else if (sub == "connect" && words.size() >= 4) {
        sentinel::net::RemoteGedClient::Options options;
        options.port =
            static_cast<int>(std::strtol(words[2].c_str(), nullptr, 10));
        options.app_name = words[3];
        shell.remote =
            std::make_unique<sentinel::net::RemoteGedClient>(options);
        st = shell.remote->Start();
        if (st.ok() &&
            shell.remote->WaitConnected(std::chrono::milliseconds(3000))) {
          if (shell.open) shell.db.AttachRemoteGedClient(shell.remote.get());
          std::printf("connected to 127.0.0.1:%d as '%s'\n", options.port,
                      options.app_name.c_str());
        } else if (st.ok()) {
          std::printf("dialing 127.0.0.1:%d in the background (%s)\n",
                      options.port, shell.remote->last_error().c_str());
        } else {
          shell.remote.reset();
        }
      } else if (sub == "define" && words.size() >= 6 &&
                 shell.remote != nullptr) {
        // ged define <event> <class> <begin|end> <signature...>
        const EventModifier modifier = words[4] == "begin"
                                           ? EventModifier::kBegin
                                           : EventModifier::kEnd;
        std::string signature;
        for (std::size_t i = 5; i < words.size(); ++i) {
          if (!signature.empty()) signature += " ";
          signature += words[i];
        }
        st = shell.remote->DefineGlobalPrimitive(words[2], words[3], modifier,
                                                 signature);
      } else if (sub == "subscribe" && words.size() >= 3 &&
                 shell.remote != nullptr) {
        sentinel::detector::ParamContext context =
            sentinel::detector::ParamContext::kRecent;
        if (words.size() >= 4) {
          if (words[3] == "chronicle") {
            context = sentinel::detector::ParamContext::kChronicle;
          } else if (words[3] == "continuous") {
            context = sentinel::detector::ParamContext::kContinuous;
          } else if (words[3] == "cumulative") {
            context = sentinel::detector::ParamContext::kCumulative;
          }
        }
        st = shell.remote->Subscribe(
            words[2], context,
            [](const std::string& event,
               const sentinel::detector::Occurrence& occurrence) {
              std::printf("  [ged] %s detected:", event.c_str());
              for (const auto& constituent : occurrence.constituents) {
                if (constituent->params == nullptr) continue;
                for (const auto& [name, value] : *constituent->params) {
                  std::printf(" %s=%s", name.c_str(),
                              value.ToString().c_str());
                }
              }
              std::printf("\n");
            });
      } else if (sub == "notify" && words.size() >= 6 &&
                 shell.remote != nullptr) {
        // ged notify <class> <oid> <begin|end> <signature...> [| k=v ...]
        const auto oid = static_cast<sentinel::oodb::Oid>(
            std::strtoull(words[3].c_str(), nullptr, 10));
        const EventModifier modifier = words[4] == "begin"
                                           ? EventModifier::kBegin
                                           : EventModifier::kEnd;
        std::string signature;
        std::size_t i = 5;
        for (; i < words.size() && words[i] != "|"; ++i) {
          if (!signature.empty()) signature += " ";
          signature += words[i];
        }
        st = shell.remote->NotifyMethod(words[2], oid, modifier, signature,
                                        ParseParams(words, i + 1), shell.txn);
      } else if (sub == "stats") {
        if (shell.bus != nullptr) {
          std::printf("server %s\n", shell.bus->StatsJson().c_str());
        }
        if (shell.remote != nullptr) {
          std::printf("client %s\n", shell.remote->StatsJson().c_str());
        }
        if (shell.bus == nullptr && shell.remote == nullptr) {
          std::printf("  (no daemon or client running)\n");
        }
      } else if (sub == "stop") {
        if (shell.open) {
          shell.db.AttachRemoteGedClient(nullptr);
          shell.db.AttachEventBusServer(nullptr);
        }
        shell.remote.reset();
        shell.bus.reset();
        if (shell.ged != nullptr) shell.ged->Shutdown();
        shell.ged.reset();
        std::printf("GED plane stopped\n");
      } else if (shell.remote == nullptr &&
                 (sub == "define" || sub == "subscribe" || sub == "notify")) {
        std::printf("error: not connected (use 'ged connect <port> <app>')\n");
      } else {
        std::printf(
            "usage: ged serve [<port>] | connect <port> <app> | define ... | "
            "subscribe ... | notify ... | stats | stop\n");
      }
    } else if (!shell.open) {
      std::printf("error: no database open (use 'open <path>' or 'memory')\n");
      continue;
    } else if (cmd == "load" && words.size() >= 2) {
      sentinel::preproc::SpecCompiler compiler(&shell.db, &shell.functions);
      st = compiler.LoadFile(words[1]);
    } else if (cmd == "spec") {
      const std::string source = line.substr(5);
      sentinel::preproc::SpecCompiler compiler(&shell.db, &shell.functions);
      st = compiler.LoadString(source);
    } else if (cmd == "begin") {
      auto begun = shell.db.Begin();
      st = begun.status();
      if (begun.ok()) {
        shell.txn = *begun;
        std::printf("txn %llu\n", static_cast<unsigned long long>(shell.txn));
      }
    } else if (cmd == "commit") {
      st = shell.db.Commit(shell.txn);
      shell.txn = sentinel::storage::kInvalidTxnId;
    } else if (cmd == "abort") {
      st = shell.db.Abort(shell.txn);
      shell.txn = sentinel::storage::kInvalidTxnId;
    } else if (cmd == "durability") {
      if (words.size() >= 2) {
        if (words[1] == "sync") {
          shell.db.set_commit_durability(
              sentinel::storage::CommitDurability::kSync);
        } else if (words[1] == "async") {
          shell.db.set_commit_durability(
              sentinel::storage::CommitDurability::kAsync);
        } else {
          std::printf("error: durability takes 'sync' or 'async'\n");
          continue;
        }
      }
      std::printf("commit durability: %s\n",
                  shell.db.commit_durability() ==
                          sentinel::storage::CommitDurability::kAsync
                      ? "async"
                      : "sync");
    } else if (cmd == "notify" && words.size() >= 5) {
      // notify <class> <oid> <begin|end> <signature...> [| k=v ...]
      const std::string& class_name = words[1];
      const auto oid =
          static_cast<sentinel::oodb::Oid>(std::strtoull(words[2].c_str(),
                                                         nullptr, 10));
      const EventModifier modifier =
          words[3] == "begin" ? EventModifier::kBegin : EventModifier::kEnd;
      // Signature: everything up to "|"; params after.
      std::string signature;
      std::size_t i = 4;
      for (; i < words.size() && words[i] != "|"; ++i) {
        if (!signature.empty()) signature += " ";
        signature += words[i];
      }
      auto params = ParseParams(words, i + 1);
      shell.db.NotifyMethod(class_name, oid, modifier, signature, params,
                            shell.txn);
    } else if (cmd == "raise" && words.size() >= 2) {
      st = shell.db.RaiseEvent(words[1], ParseParams(words, 2), shell.txn);
    } else if (cmd == "advance" && words.size() >= 2) {
      shell.db.AdvanceTime(std::strtoull(words[1].c_str(), nullptr, 10));
    } else if (cmd == "events") {
      for (const auto& name : shell.db.detector()->EventNames()) {
        std::printf("  %s\n", name.c_str());
      }
    } else if (cmd == "rules") {
      for (const auto& name : shell.db.rule_manager()->RuleNames()) {
        auto rule = shell.db.rule_manager()->Find(name);
        if (!rule.ok()) continue;
        std::printf("  %s on %s [%s, prio %d, %s, fired %llu]\n", name.c_str(),
                    (*rule)->declared_event().c_str(),
                    sentinel::rules::CouplingModeToString((*rule)->coupling()),
                    (*rule)->priority(),
                    (*rule)->enabled() ? "enabled" : "disabled",
                    static_cast<unsigned long long>((*rule)->fired_count()));
      }
    } else if (cmd == "enable" && words.size() >= 2) {
      st = shell.db.rule_manager()->EnableRule(words[1]);
    } else if (cmd == "disable" && words.size() >= 2) {
      st = shell.db.rule_manager()->DisableRule(words[1]);
    } else if (cmd == "trace" && words.size() >= 3 && words[1] == "span") {
      sentinel::obs::SpanTracer* spans = shell.db.span_tracer();
      if (words[2] == "off") {
        spans->set_mode(sentinel::obs::TraceMode::kOff);
      } else if (words[2] == "flight") {
        spans->set_mode(sentinel::obs::TraceMode::kFlightOnly);
      } else if (words[2] == "full") {
        spans->set_mode(sentinel::obs::TraceMode::kFull);
      } else {
        std::printf("usage: trace span <off|flight|full>\n");
        continue;
      }
      std::printf("span tracing %s\n",
                  sentinel::obs::TraceModeToString(spans->mode()));
    } else if (cmd == "trace" && words.size() >= 3 && words[1] == "export") {
      st = shell.db.ExportTrace(words[2]);
      if (st.ok()) {
        std::printf("trace written to %s (load in ui.perfetto.dev)\n",
                    words[2].c_str());
      }
    } else if (cmd == "postmortem") {
      if (words.size() >= 2) {
        auto written = shell.db.DumpPostmortem("shell", shell.txn, words[1]);
        st = written.status();
        if (written.ok()) {
          std::printf("postmortem written to %s\n", written->c_str());
        }
      } else {
        std::printf("%s\n",
                    shell.db.PostmortemJson("shell", shell.txn).c_str());
      }
    } else if (cmd == "trace") {
      sentinel::obs::ProvenanceTracer* tracer = shell.db.tracer();
      if (words.size() >= 2 && words[1] == "on") {
        tracer->set_enabled(true);
        std::printf("tracing on\n");
      } else if (words.size() >= 2 && words[1] == "off") {
        tracer->set_enabled(false);
        std::printf("tracing off\n");
      } else if (words.size() >= 3 && words[1] == "txn") {
        const auto txn = static_cast<sentinel::storage::TxnId>(
            std::strtoull(words[2].c_str(), nullptr, 10));
        std::printf("%s\n",
                    sentinel::obs::ProvenanceTracer::EdgesJson(
                        tracer->DrainTxn(txn))
                        .c_str());
      } else {
        std::printf("%s\n", tracer->ToJson().c_str());
      }
    } else if (cmd == "rtrace") {
      std::printf("%s", shell.debugger.RenderTrace().c_str());
    } else if (cmd == "dot") {
      std::printf("%s", shell.db.detector()->DumpGraph().c_str());
    } else if (cmd == "stats") {
      std::printf("%s\n", shell.db.StatsJson().c_str());
    } else if (cmd == "serve") {
      if (words.size() >= 2 && words[1] == "stop") {
        shell.db.StopMonitoring();
        std::printf("monitoring stopped\n");
      } else {
        const int port =
            words.size() >= 2
                ? static_cast<int>(std::strtol(words[1].c_str(), nullptr, 10))
                : 9464;
        auto bound = shell.db.StartMonitoring(port);
        st = bound.status();
        if (bound.ok()) {
          std::printf("monitor listening on http://127.0.0.1:%d "
                      "(/metrics /healthz /stats /graph /trace /postmortem "
                      "/profile)\n",
                      *bound);
        }
      }
    } else if (cmd == "profile") {
      sentinel::obs::Profiler* profiler = shell.db.profiler();
      const std::string sub = words.size() >= 2 ? words[1] : "";
      if (sub == "start") {
        profiler->Start();
        std::printf("profiling on\n");
      } else if (sub == "stop") {
        profiler->Stop();
        std::printf("profiling off\n");
      } else if (sub == "reset") {
        profiler->Reset();
        std::printf("profile accounts zeroed\n");
      } else if (sub == "top") {
        std::printf("rules by total wall-ns:\n");
        auto rules = profiler->RuleSnapshots();
        std::sort(rules.begin(), rules.end(),
                  [](const auto& a, const auto& b) {
                    return a.total_wall_ns() > b.total_wall_ns();
                  });
        for (const auto& r : rules) {
          // Conditionless rules never record the condition seam, so the
          // firing count is the busiest seam's invocation count.
          const auto firings = std::max(
              {r.seams[0].invocations, r.seams[1].invocations,
               r.seams[2].invocations});
          std::printf("  %-32s %12llu ns (%llu firings)\n", r.name.c_str(),
                      static_cast<unsigned long long>(r.total_wall_ns()),
                      static_cast<unsigned long long>(firings));
        }
        std::printf("contended sites by wait-ns:\n");
        for (const auto& site : profiler->TopContended(8)) {
          std::printf("  %-32s %12llu ns (%llu/%llu contended)\n",
                      site.site.c_str(),
                      static_cast<unsigned long long>(site.wait_ns),
                      static_cast<unsigned long long>(site.contended),
                      static_cast<unsigned long long>(site.acquisitions));
        }
      } else if (sub == "export") {
        if (words.size() >= 3) {
          std::FILE* f = std::fopen(words[2].c_str(), "wb");
          if (f == nullptr) {
            st = Status::IOError("cannot open " + words[2]);
          } else {
            // Folded stacks, the input of flamegraph.pl / inferno.
            const std::string folded = profiler->FoldedStacks();
            std::fwrite(folded.data(), 1, folded.size(), f);
            std::fclose(f);
            std::printf("folded stacks written to %s (%llu samples)\n",
                        words[2].c_str(),
                        static_cast<unsigned long long>(profiler->samples()));
          }
        } else {
          std::printf("%s\n", profiler->ProfileJson().c_str());
        }
      } else {
        std::printf("usage: profile start|stop|reset|top|export [file]\n");
      }
    } else if (cmd == "health") {
      int http_status = 200;
      const std::string body = shell.db.HealthJson(&http_status);
      std::printf("%d %s\n", http_status, body.c_str());
    } else if (cmd == "metrics") {
      std::printf("%s", shell.db.PrometheusText().c_str());
    } else {
      std::printf("error: unknown command '%s' (try 'help')\n", cmd.c_str());
      continue;
    }
    if (!st.ok()) std::printf("error: %s\n", st.ToString().c_str());
  }
  if (shell.open) (void)shell.db.Close();
  return 0;
}

}  // namespace

int main() { return Run(); }
