#!/usr/bin/env python3
"""Shard-steering load report over a /profile snapshot (DESIGN.md §15).

Reads the JSON served by GET /profile (or `profile export` in the shell),
attributes cost to interned class symbols, and bin-packs the symbols into N
shards — the machine-readable input ROADMAP item 2's detector/lock-manager
partitioning needs:

  * per-symbol cost shares (primitive dispatch + attributed rule cost, as a
    fraction of total attributed wall-ns),
  * per-symbol event rates (primitive dispatches per second of profiling),
  * cross-symbol rule coupling: rules whose triggering occurrences span
    more than one class symbol (composite events over several classes).
    Coupled symbols are merged before packing — splitting them across
    shards would turn every such rule firing into a cross-shard detection.

Packing is greedy LPT (longest-processing-time) over the coupled groups:
groups sorted by cost descending, each placed into the currently lightest
shard, which is within 4/3 of the optimal makespan — plenty for a steering
report whose inputs are measured shares, not exact costs.

Usage:
  tools/shard_plan.py [--shards N] [--json] [profile.json]
  tools/shard_plan.py --selftest

Reads stdin when no file is given. --json emits only the machine-readable
plan; the default also prints a human-readable table. --selftest runs the
packer against a built-in fixture and asserts the report invariants (every
shard non-empty, cost shares summing to ~1.0, coupled symbols co-located).
"""

import argparse
import json
import sys


def _merge_coupled(symbols, rules):
    """Union-find over symbols: rules touching several symbols couple them."""
    parent = {s: s for s in symbols}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    coupling = []
    for rule in rules:
        syms = [s for s in rule.get("symbols", []) if s in parent]
        if len(syms) > 1:
            coupling.append({
                "rule": rule.get("name", "?"),
                "symbols": sorted(syms),
                "total_wall_ns": rule.get("total_wall_ns", 0),
            })
            for other in syms[1:]:
                union(syms[0], other)

    groups = {}
    for sym in symbols:
        groups.setdefault(find(sym), []).append(sym)
    return sorted(groups.values(), key=lambda g: sorted(g)), coupling


def build_plan(profile, shard_count):
    """The shard-steering report for one /profile snapshot."""
    duration_s = profile.get("duration_ns", 0) / 1e9
    symbol_rows = profile.get("symbols", [])

    cost = {}
    events = {}
    for row in symbol_rows:
        name = row["symbol"]
        cost[name] = row.get("total_wall_ns",
                             row.get("events", {}).get("wall_ns", 0) +
                             row.get("rules", {}).get("wall_ns", 0))
        events[name] = row.get("events", {}).get("invocations", 0)

    total_cost = sum(cost.values())
    groups, coupling = _merge_coupled(list(cost), profile.get("rules", []))

    # Never plan more shards than there are packable groups — an empty shard
    # is a lie about achievable parallelism.
    shard_count = max(1, min(shard_count, len(groups) or 1))

    shards = [{
        "id": i,
        "symbols": [],
        "cost_ns": 0,
        "events": 0,
    } for i in range(shard_count)]

    def group_cost(group):
        return sum(cost[s] for s in group)

    for group in sorted(groups, key=group_cost, reverse=True):
        target = min(shards, key=lambda s: s["cost_ns"])
        target["symbols"].extend(sorted(group))
        target["cost_ns"] += group_cost(group)
        target["events"] += sum(events[s] for s in group)

    for shard in shards:
        shard["cost_share"] = (
            shard["cost_ns"] / total_cost if total_cost else 0.0)
        shard["events_per_sec"] = (
            shard["events"] / duration_s if duration_s else 0.0)

    return {
        "shard_count": shard_count,
        "duration_ns": profile.get("duration_ns", 0),
        "total_cost_ns": total_cost,
        "symbols": [{
            "symbol": name,
            "cost_ns": cost[name],
            "cost_share": cost[name] / total_cost if total_cost else 0.0,
            "events": events[name],
            "events_per_sec": (
                events[name] / duration_s if duration_s else 0.0),
        } for name in sorted(cost, key=cost.get, reverse=True)],
        "coupling": coupling,
        "shards": shards,
    }


def check_invariants(plan):
    """Raises AssertionError when the plan violates the report contract."""
    shards = plan["shards"]
    assert shards, "plan has no shards"
    for shard in shards:
        assert shard["symbols"], f"shard {shard['id']} is empty"
    if plan["total_cost_ns"] > 0:
        share = sum(s["cost_share"] for s in shards)
        assert abs(share - 1.0) < 1e-9, f"cost shares sum to {share}"
    placed = [sym for shard in shards for sym in shard["symbols"]]
    assert len(placed) == len(set(placed)), "symbol placed twice"
    where = {sym: shard["id"] for shard in shards for sym in shard["symbols"]}
    for couple in plan["coupling"]:
        homes = {where[s] for s in couple["symbols"] if s in where}
        assert len(homes) <= 1, (
            f"rule {couple['rule']} split across shards {sorted(homes)}")


FIXTURE = {
    # The inventory example's shape: stock trades dominate, audit couples
    # ORDER and AUDIT through one composite rule, WAREHOUSE idles along.
    "mode": "on",
    "duration_ns": 2_000_000_000,
    "samples": 1800,
    "rules": [
        {"name": "reorder_on_low_stock", "total_wall_ns": 900_000,
         "symbols": ["STOCK"]},
        {"name": "audit_large_orders", "total_wall_ns": 400_000,
         "symbols": ["AUDIT", "ORDER"]},
        {"name": "restock_warehouse", "total_wall_ns": 100_000,
         "symbols": ["WAREHOUSE"]},
    ],
    "symbols": [
        {"symbol": "STOCK", "events": {"invocations": 50_000,
                                       "wall_ns": 600_000},
         "rules": {"wall_ns": 900_000}, "total_wall_ns": 1_500_000},
        {"symbol": "ORDER", "events": {"invocations": 8_000,
                                       "wall_ns": 150_000},
         "rules": {"wall_ns": 250_000}, "total_wall_ns": 400_000},
        {"symbol": "AUDIT", "events": {"invocations": 2_000,
                                       "wall_ns": 40_000},
         "rules": {"wall_ns": 160_000}, "total_wall_ns": 200_000},
        {"symbol": "WAREHOUSE", "events": {"invocations": 500,
                                           "wall_ns": 20_000},
         "rules": {"wall_ns": 80_000}, "total_wall_ns": 100_000},
    ],
}


def selftest():
    for shard_count in (1, 2, 3, 8):
        plan = build_plan(FIXTURE, shard_count)
        check_invariants(plan)
    plan = build_plan(FIXTURE, 2)
    # ORDER and AUDIT are coupled by audit_large_orders: one home shard.
    where = {sym: s["id"] for s in plan["shards"] for sym in s["symbols"]}
    assert where["ORDER"] == where["AUDIT"]
    # STOCK dominates, so LPT keeps it away from the coupled pair.
    assert where["STOCK"] != where["ORDER"]
    # Shares reflect the fixture: STOCK alone is 1.5M of 2.2M total.
    stock = next(s for s in plan["symbols"] if s["symbol"] == "STOCK")
    assert abs(stock["cost_share"] - 1_500_000 / 2_200_000) < 1e-9
    assert stock["events_per_sec"] == 25_000.0
    # Requesting more shards than groups collapses to the group count.
    assert build_plan(FIXTURE, 8)["shard_count"] == 3
    empty = build_plan({"mode": "off", "duration_ns": 0, "rules": [],
                        "symbols": []}, 4)
    assert empty["shard_count"] == 1 and empty["total_cost_ns"] == 0
    print("shard_plan selftest: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Shard-steering load report over a /profile snapshot.")
    parser.add_argument("profile", nargs="?",
                        help="profile JSON file (stdin when omitted)")
    parser.add_argument("--shards", type=int, default=2,
                        help="target shard count (default 2)")
    parser.add_argument("--json", action="store_true",
                        help="emit only the machine-readable plan")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in fixture checks and exit")
    args = parser.parse_args()

    if args.selftest:
        return selftest()

    if args.profile:
        with open(args.profile) as f:
            profile = json.load(f)
    else:
        profile = json.load(sys.stdin)

    if not profile.get("symbols"):
        print("no symbol cost accounts in profile "
              "(is profiling on? did any events fire?)", file=sys.stderr)
        return 1

    plan = build_plan(profile, args.shards)
    check_invariants(plan)

    if args.json:
        json.dump(plan, sys.stdout, indent=2)
        print()
        return 0

    print(f"shard plan: {plan['shard_count']} shards over "
          f"{len(plan['symbols'])} symbols, "
          f"total attributed cost {plan['total_cost_ns'] / 1e6:.2f} ms")
    for sym in plan["symbols"]:
        print(f"  {sym['symbol']:24s} share {sym['cost_share']:6.1%}   "
              f"{sym['events_per_sec']:12.1f} events/s")
    if plan["coupling"]:
        print("cross-symbol rule coupling:")
        for couple in plan["coupling"]:
            print(f"  {couple['rule']:24s} couples "
                  f"{', '.join(couple['symbols'])}")
    for shard in plan["shards"]:
        print(f"shard {shard['id']}: share {shard['cost_share']:6.1%}   "
              f"{shard['events_per_sec']:12.1f} events/s   "
              f"symbols: {', '.join(shard['symbols'])}")
    json.dump(plan, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
