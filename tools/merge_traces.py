#!/usr/bin/env python3
"""Merges per-process Chrome trace exports into one clock-aligned timeline.

Each Sentinel process exports its spans with `SpanTracer::ExportChromeTrace`
and stamps the file's top-level `otherData` with

  - process          -- a human label ("daemon", "client:inventory", ...),
  - base_ns          -- the absolute steady-clock origin the relative `ts`
                        fields are measured from, and
  - clock_offset_ns  -- this process's steady clock minus the reference
                        process's, as estimated from the heartbeat ping/pong
                        (0 for the reference timeline itself).

A span's absolute time is  base_ns + ts*1000 ; subtracting clock_offset_ns
places it on the reference timeline. This tool re-bases every input onto
that shared timeline, gives each input file its own Perfetto process lane,
and preserves the causal linkage carried in span args:

  - args.span / args.parent  -- ids within one export (one tracer), and
  - args.trace / args.remote_parent -- the distributed-trace id and the
    causal parent's span id, which lives in ANOTHER file's export. Span ids
    are per-tracer, so a remote parent is resolved by (trace, span id)
    across all inputs.

Usage:
  merge_traces.py [--out merged.json] [--check] [--tolerance-us N]
                  trace_daemon.json trace_client.json ...

--check validates the merged result the way CI consumes it:
  1. at least one distributed trace spans >= 2 processes;
  2. that trace forms a single connected tree (every span reaches one
     root, following local parents within a file and remote parents
     across files);
  3. after the clock shift, every child starts no earlier than
     `tolerance-us` before its parent (heartbeat offset estimation has
     jitter; the default 500us absorbs it); and
  4. the tree exercises the full wire path: both net_frame_encode and
     net_frame_decode spans are present in >= 2 distinct processes.

Exits non-zero with a description of the first violation.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"merge_traces: FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str, index: int) -> dict:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: cannot load: {e}")
    other = doc.get("otherData", {})
    process = other.get("process") or f"process{index}"
    spans = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        spans.append(
            {
                "file": path,
                "process": process,
                "name": ev.get("name", ""),
                "kind": args.get("kind", ev.get("cat", "")),
                "tid": ev.get("tid", 0),
                "ts_us": float(ev.get("ts", 0.0)),
                "dur_us": float(ev.get("dur", 0.0)),
                "span": int(args.get("span", 0)),
                "parent": int(args.get("parent", 0)),
                "trace": int(args.get("trace", 0)),
                "remote_parent": int(args.get("remote_parent", 0)),
                "txn": args.get("txn"),
                "subtxn": args.get("subtxn"),
            }
        )
    return {
        "path": path,
        "process": process,
        "base_ns": int(other.get("base_ns", 0)),
        "clock_offset_ns": int(other.get("clock_offset_ns", 0)),
        "spans": spans,
    }


def shifted_start_ns(file_doc: dict, span: dict) -> float:
    absolute = file_doc["base_ns"] + span["ts_us"] * 1000.0
    return absolute - file_doc["clock_offset_ns"]


def build_trace_tree(files: list, trace_id: int):
    """Collects the spans of one distributed trace plus their local
    ancestors (a client's txn span has trace=0 but parents the traced
    notify-encode span), and returns (nodes, edges, roots).

    Nodes are (file_index, span_id); edges child -> parent."""
    by_file_span = {}
    for fi, fd in enumerate(files):
        for s in fd["spans"]:
            by_file_span[(fi, s["span"])] = s

    # Seed: spans annotated with the trace id.
    nodes = {
        (fi, s["span"])
        for fi, fd in enumerate(files)
        for s in fd["spans"]
        if s["trace"] == trace_id
    }
    if not nodes:
        return {}, {}, set()

    # Close over local parent chains so untraced ancestors (txn spans,
    # scheduler subtxn spans recorded before annotation) join the tree.
    work = list(nodes)
    while work:
        fi, sid = work.pop()
        s = by_file_span.get((fi, sid))
        if s is None:
            continue
        p = s["parent"]
        if p and (fi, p) in by_file_span and (fi, p) not in nodes:
            nodes.add((fi, p))
            work.append((fi, p))

    # ... and over local descendants: only the wire-crossing spans carry
    # the trace id, but the work they cause in-process (a push handler's
    # notify -> subtxn -> condition/action chain) links to them through
    # plain parent ids within the same export.
    children = {}
    for (fi, sid), s in by_file_span.items():
        if s["parent"]:
            children.setdefault((fi, s["parent"]), []).append((fi, sid))
    work = list(nodes)
    while work:
        key = work.pop()
        for child in children.get(key, []):
            if child not in nodes:
                nodes.add(child)
                work.append(child)

    # Remote parent index: (trace, span_id) -> (file_index, span_id).
    remote_index = {}
    for fi, fd in enumerate(files):
        for s in fd["spans"]:
            if s["trace"] == trace_id:
                remote_index[s["span"]] = (fi, s["span"])

    edges = {}
    roots = set()
    for fi, sid in nodes:
        s = by_file_span[(fi, sid)]
        parent = None
        if s["parent"] and (fi, s["parent"]) in nodes:
            parent = (fi, s["parent"])
        elif s["remote_parent"]:
            hit = remote_index.get(s["remote_parent"])
            if hit is not None and hit != (fi, sid):
                parent = hit
        if parent is None:
            roots.add((fi, sid))
        else:
            edges[(fi, sid)] = parent
    return {n: by_file_span[n] for n in nodes}, edges, roots


def check(files: list, tolerance_us: float) -> None:
    # 1. Find a trace spanning >= 2 processes.
    trace_procs = {}
    for fd in files:
        for s in fd["spans"]:
            if s["trace"]:
                trace_procs.setdefault(s["trace"], set()).add(fd["process"])
    multi = {t for t, procs in trace_procs.items() if len(procs) >= 2}
    if not multi:
        fail(
            "no distributed trace spans two processes "
            f"({len(trace_procs)} trace ids seen)"
        )

    checked = 0
    connected = 0
    kinds_ok = 0
    for trace_id in sorted(multi):
        nodes, edges, roots = build_trace_tree(files, trace_id)
        if not nodes:
            continue
        checked += 1

        # 2. Single connected tree: one root, every node reaches it.
        if len(roots) != 1:
            continue
        root = next(iter(roots))
        ok = True
        for n in nodes:
            seen = set()
            cur = n
            while cur in edges:
                if cur in seen:
                    fail(f"trace {trace_id:#x}: parent cycle at {cur}")
                seen.add(cur)
                cur = edges[cur]
            if cur != root:
                ok = False
                break
        if not ok:
            continue
        connected += 1

        # 3. Clock-shifted monotonicity across every parent edge.
        for child, parent in edges.items():
            cs = shifted_start_ns(files[child[0]], nodes[child])
            ps = shifted_start_ns(files[parent[0]], nodes[parent])
            if cs + tolerance_us * 1000.0 < ps:
                fail(
                    f"trace {trace_id:#x}: child "
                    f"{nodes[child]['kind']}@{files[child[0]]['process']} "
                    f"starts {(ps - cs) / 1000.0:.1f}us before parent "
                    f"{nodes[parent]['kind']}@{files[parent[0]]['process']} "
                    f"(tolerance {tolerance_us}us)"
                )

        # 4. The wire path is visible from both sides.
        encode_procs = {
            files[fi]["process"]
            for (fi, sid), s in nodes.items()
            if s["kind"] == "net_frame_encode"
        }
        decode_procs = {
            files[fi]["process"]
            for (fi, sid), s in nodes.items()
            if s["kind"] == "net_frame_decode"
        }
        if encode_procs and decode_procs and len(encode_procs | decode_procs) >= 2:
            kinds_ok += 1

    if connected == 0:
        fail(
            f"none of the {checked} multi-process traces forms a single "
            "connected tree"
        )
    if kinds_ok == 0:
        fail(
            "no connected trace shows both net_frame_encode and "
            "net_frame_decode across two processes"
        )
    print(
        f"merge_traces: OK: {len(multi)} multi-process traces, "
        f"{connected} connected, {kinds_ok} with a full wire path"
    )


def merge(files: list) -> dict:
    t0 = min(
        (
            shifted_start_ns(fd, s)
            for fd in files
            for s in fd["spans"]
        ),
        default=0.0,
    )
    events = []
    for pid, fd in enumerate(files, start=1):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": fd["process"]},
            }
        )
        for s in fd["spans"]:
            args = {
                "span": s["span"],
                "parent": s["parent"],
                "kind": s["kind"],
                "process": fd["process"],
            }
            if s["trace"]:
                args["trace"] = s["trace"]
            if s["remote_parent"]:
                args["remote_parent"] = s["remote_parent"]
            if s["txn"] is not None:
                args["txn"] = s["txn"]
            if s["subtxn"] is not None:
                args["subtxn"] = s["subtxn"]
            events.append(
                {
                    "name": s["name"],
                    "cat": s["kind"],
                    "ph": "X",
                    "ts": round((shifted_start_ns(fd, s) - t0) / 1000.0, 3),
                    "dur": s["dur_us"],
                    "pid": pid,
                    "tid": s["tid"],
                    "args": args,
                }
            )
    return {
        "displayTimeUnit": "ns",
        "traceEvents": events,
        "otherData": {
            "merged_from": [fd["path"] for fd in files],
            "processes": [fd["process"] for fd in files],
        },
    }


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("inputs", nargs="+", help="per-process trace exports")
    ap.add_argument("--out", help="write the merged Chrome trace here")
    ap.add_argument(
        "--check",
        action="store_true",
        help="validate cross-process connectivity and clock alignment",
    )
    ap.add_argument(
        "--tolerance-us",
        type=float,
        default=500.0,
        help="allowed child-before-parent skew after the clock shift",
    )
    args = ap.parse_args()

    files = [load(path, i) for i, path in enumerate(args.inputs)]
    if len(files) < 2 and args.check:
        fail("--check needs at least two process exports")

    if args.check:
        check(files, args.tolerance_us)

    if args.out:
        with open(args.out, "w") as f:
            json.dump(merge(files), f, indent=1)
        total = sum(len(fd["spans"]) for fd in files)
        print(f"merge_traces: wrote {args.out} ({total} spans, "
              f"{len(files)} processes)")


if __name__ == "__main__":
    main()
