#!/usr/bin/env bash
# Runs the dispatch-path benchmarks and merges their JSON output into one
# artifact, BENCH_dispatch.json, annotated with aggregate multi-thread
# throughput (the benchmark library reports per-thread-normalized rates for
# ->Threads(n) runs, so the aggregate is items_per_second * threads).
#
# Usage: tools/run_benches.sh [--strict] [build_dir] [out_json]
#   --strict   exit non-zero when ANY benchmark listed in
#              tools/bench_baseline.json regresses >10% (default: warn only),
#              or when the monitoring plane adds >10% to the Notify path
#   build_dir  defaults to ./build (must contain bench/ binaries)
#   out_json   defaults to BENCH_dispatch.json in the current directory
#
# Also runs bench_monitor_overhead and writes BENCH_monitor.json next to
# out_json: the Notify hot path measured bare, under the health watchdog,
# and under watchdog + a concurrently scraping /metrics endpoint. Overheads
# above 2% print a warning (noise allowance); above 10% strict mode fails.
# BENCH_profile.json gates the continuous profiler's off-mode Notify cost
# against the checked-in baselines the same way and reports on-mode
# overhead informationally (bench_profile_overhead).
#
# Note: the bundled Google Benchmark predates duration-suffixed
# --benchmark_min_time values; pass plain seconds (0.2, not "0.2s").
set -euo pipefail

STRICT=0
positional=()
for arg in "$@"; do
  case "${arg}" in
    --strict) STRICT=1 ;;
    *) positional+=("${arg}") ;;
  esac
done

BUILD_DIR="${positional[0]:-build}"
OUT="${positional[1]:-BENCH_dispatch.json}"
MIN_TIME="${BENCH_MIN_TIME:-0.2}"
export SENTINEL_BENCH_STRICT="${STRICT}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

# Each benchmark with a DumpMetricsSnapshot hook leaves an observability
# snapshot (ActiveDatabase::StatsJson) next to the timing artifact.
METRICS_DIR="${SENTINEL_BENCH_METRICS_DIR:-BENCH_metrics}"
mkdir -p "${METRICS_DIR}"
export SENTINEL_BENCH_METRICS_DIR="${METRICS_DIR}"

run() {
  local bin="$1" filter="$2" out="$3"
  "${BUILD_DIR}/bench/${bin}" \
    --benchmark_filter="${filter}" \
    --benchmark_min_time="${MIN_TIME}" \
    --benchmark_format=json \
    --benchmark_out="${out}" \
    --benchmark_out_format=json >/dev/null
}

run bench_primitive_events 'BM_Notify.*' "${tmpdir}/primitive.json"
run bench_threading 'BM_NotifyConcurrent.*' "${tmpdir}/threading.json"
run bench_span_overhead 'BM_Span.*' "${tmpdir}/span.json"
run bench_monitor_overhead 'BM_Monitor.*' "${tmpdir}/monitor.json"
run bench_net_throughput 'BM_Net.*' "${tmpdir}/net.json"
run bench_commit_throughput 'BM_Commit.*' "${tmpdir}/commit.json"
run bench_profile_overhead 'BM_Profile.*' "${tmpdir}/profile.json"

BASELINE="$(dirname "$0")/bench_baseline.json"

python3 - "${BASELINE}" "${tmpdir}/primitive.json" "${tmpdir}/threading.json" \
    "${tmpdir}/span.json" "${OUT}" <<'PY'
import json
import os
import re
import sys

baseline_path = sys.argv[1]
merged = {"context": None, "benchmarks": []}
for path in sys.argv[2:-1]:
    with open(path) as f:
        doc = json.load(f)
    if merged["context"] is None:
        merged["context"] = doc.get("context", {})
    merged["benchmarks"].extend(doc.get("benchmarks", []))

for bench in merged["benchmarks"]:
    m = re.search(r"/threads:(\d+)", bench.get("name", ""))
    if m and "items_per_second" in bench:
        threads = int(m.group(1))
        bench["threads"] = threads
        bench["aggregate_items_per_second"] = (
            bench["items_per_second"] * threads
        )

# Fold in the checked-in pre-PR baseline and per-benchmark speedups so the
# artifact is self-contained evidence of the improvement. EVERY benchmark
# with a baseline entry that regresses more than 10% gets a printed warning;
# with --strict (SENTINEL_BENCH_STRICT=1) they fail the run instead, so CI
# can gate on hot-path regressions across the whole tracked set.
regressions = []
if os.path.exists(baseline_path):
    with open(baseline_path) as f:
        baseline = json.load(f)
    merged["pre_pr_baseline"] = baseline
    base_times = baseline.get("benchmarks", {})
    for bench in merged["benchmarks"]:
        base = base_times.get(bench.get("name"))
        if base and bench.get("real_time"):
            speedup = base["real_time_ns"] / bench["real_time"]
            bench["speedup_vs_baseline"] = speedup
            if speedup < 1 / 1.10:
                regressions.append(
                    (bench["name"], base["real_time_ns"], bench["real_time"])
                )

# Trace-context trailer cost (DESIGN.md §14): encoding a Notify frame with
# the 24-byte trailer + flags bit vs the bare pre-trailer encode, measured
# in the same run. Target <2% (noise allowance); >10% fails strict mode —
# the same two-tier pattern as the monitoring-plane gate below.
times = {
    b["name"]: b.get("real_time")
    for b in merged["benchmarks"]
    if b.get("run_type") != "aggregate"
}
trailer_base = times.get("BM_SpanNetEncodeBaseline")
trailer = times.get("BM_SpanNetEncodeTrailer")
if trailer_base and trailer:
    pct = (trailer - trailer_base) / trailer_base * 100.0
    merged["trace_trailer_overhead_pct"] = pct
    print(f"  trace-context trailer encode overhead: {pct:+.2f}%")
    if pct > 10.0:
        regressions.append(
            ("BM_SpanNetEncodeTrailer (+%.1f%% vs baseline encode)" % pct,
             trailer_base, trailer)
        )
    elif pct > 2.0:
        print(f"WARNING: trace-context trailer adds {pct:.1f}% to the "
              "Notify encode (above the 2% target)")

with open(sys.argv[-1], "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")

strict = os.environ.get("SENTINEL_BENCH_STRICT") == "1"
for name, base_ns, now_ns in regressions:
    severity = "ERROR" if strict else "WARNING"
    print(
        f"{severity}: {name} regressed >10% vs baseline "
        f"({base_ns:.1f} ns -> {now_ns:.1f} ns)."
    )

for bench in merged["benchmarks"]:
    if bench.get("run_type") == "aggregate":
        continue
    name = bench["name"]
    t = bench.get("real_time")
    unit = bench.get("time_unit", "ns")
    agg = bench.get("aggregate_items_per_second")
    line = f"  {name:55s} {t:10.1f} {unit}"
    if agg is not None:
        line += f"   aggregate {agg / 1e6:8.2f} M items/s"
    speedup = bench.get("speedup_vs_baseline")
    if speedup is not None:
        line += f"   {speedup:.2f}x vs baseline"
    print(line)

if strict and regressions:
    sys.exit(1)
PY

# Monitoring-plane overhead artifact: Notify cost bare vs under the watchdog
# vs under watchdog + live /metrics scraping, with relative overheads.
MONITOR_OUT="$(dirname "${OUT}")/BENCH_monitor.json"
python3 - "${tmpdir}/monitor.json" "${MONITOR_OUT}" <<'PY'
import json
import os
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
times = {}
for bench in doc.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    times[bench["name"]] = bench.get("real_time")

off = times.get("BM_MonitorNotifyOff")
out = {
    "description": (
        "Notify hot-path cost without monitoring, with the health watchdog "
        "sampling at 10ms, and with watchdog + a concurrent /metrics "
        "scraper. Overheads are relative to BM_MonitorNotifyOff; the "
        "monitoring plane must stay within noise (<2%) of the bare path."
    ),
    "context": doc.get("context", {}),
    "benchmarks": times,
    "overhead_pct": {},
}
failures = []
strict = os.environ.get("SENTINEL_BENCH_STRICT") == "1"
for name in ("BM_MonitorNotifyWatchdog", "BM_MonitorNotifyServerAndWatchdog"):
    t = times.get(name)
    if not off or not t:
        continue
    pct = (t - off) / off * 100.0
    out["overhead_pct"][name] = pct
    print(f"  {name:55s} {t:10.1f} ns   {pct:+6.2f}% vs off")
    if pct > 10.0:
        failures.append((name, pct))
        print(f"{'ERROR' if strict else 'WARNING'}: {name} adds "
              f"{pct:.1f}% to the Notify path (>10%)")
    elif pct > 2.0:
        print(f"WARNING: {name} adds {pct:.1f}% to the Notify path "
              "(above the 2% noise allowance)")

with open(sys.argv[2], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
if strict and failures:
    sys.exit(1)
PY

# Profiling-plane artifact: the Notify hot path with the profiler off vs on,
# for both the declared-no-rule and immediate-rule loop shapes. The gated
# claim is OFF-MODE cost: with profiling off every feed is one relaxed load,
# so the Off variants are held to the checked-in conservative baselines
# (>2% over warns, >10% fails strict — the BM_Notify* gate). Profiling ON is
# opt-in and pays for its clock reads; its overhead vs the Off twin is
# reported for the artifact but never fails the run.
PROFILE_OUT="$(dirname "${OUT}")/BENCH_profile.json"
python3 - "${BASELINE}" "${tmpdir}/profile.json" "${PROFILE_OUT}" <<'PY'
import json
import os
import sys

with open(sys.argv[1]) as f:
    baseline = json.load(f)
with open(sys.argv[2]) as f:
    doc = json.load(f)
times = {}
for bench in doc.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    times[bench["name"]] = bench.get("real_time")

out = {
    "description": (
        "Continuous-profiling overhead: the Notify hot path (declared "
        "event, subscribed sink, no rule) and the full immediate-rule "
        "firing path, each with the profiler off and on. Off variants are "
        "gated against the checked-in conservative baselines (off-mode is "
        "one relaxed load); on_overhead_pct compares each On variant to "
        "its Off twin within this run and is informational — profiling on "
        "is opt-in and pays for its per-firing clock reads."
    ),
    "context": doc.get("context", {}),
    "benchmarks": times,
    "off_vs_baseline_pct": {},
    "on_overhead_pct": {},
}
failures = []
strict = os.environ.get("SENTINEL_BENCH_STRICT") == "1"
base_times = baseline.get("benchmarks", {})
for name in ("BM_ProfileNotifyDeclaredNoRuleOff",
             "BM_ProfileNotifyImmediateRuleOff"):
    t = times.get(name)
    base = base_times.get(name, {}).get("real_time_ns")
    if not t or not base:
        continue
    pct = (t - base) / base * 100.0
    out["off_vs_baseline_pct"][name] = pct
    print(f"  {name:55s} {t:10.1f} ns   {pct:+6.2f}% vs baseline")
    if pct > 10.0:
        failures.append((name, pct))
        print(f"{'ERROR' if strict else 'WARNING'}: {name} is "
              f"{pct:.1f}% over the off-mode baseline (>10%)")
    elif pct > 2.0:
        print(f"WARNING: {name} is {pct:.1f}% over the off-mode baseline "
              "(above the 2% noise allowance)")

for off_name, on_name in (
    ("BM_ProfileNotifyDeclaredNoRuleOff", "BM_ProfileNotifyDeclaredNoRuleOn"),
    ("BM_ProfileNotifyImmediateRuleOff", "BM_ProfileNotifyImmediateRuleOn"),
):
    off = times.get(off_name)
    on = times.get(on_name)
    if not off or not on:
        continue
    pct = (on - off) / off * 100.0
    out["on_overhead_pct"][on_name] = pct
    print(f"  {on_name:55s} {on:10.1f} ns   {pct:+6.2f}% vs off (info)")

with open(sys.argv[3], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
if strict and failures:
    sys.exit(1)
PY

# Network-plane artifact: frame codec cost, loopback notify→push round-trip,
# and streamed throughput. Socket timings are machine-dependent, so this
# artifact is informational — it never joins bench_baseline.json, and strict
# mode only fails if the benchmark itself failed to run (caught above by
# `set -e`) or reported an error.
NET_OUT="$(dirname "${OUT}")/BENCH_net.json"
python3 - "${tmpdir}/net.json" "${NET_OUT}" <<'PY'
import json
import os
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
out = {
    "description": (
        "Networked GED event bus: frame codec, notify->push round-trip "
        "over loopback TCP (untraced and with full distributed tracing), "
        "and streamed batch throughput with the admission/backpressure "
        "pipeline engaged. Round-trip runs carry the always-on e2e "
        "latency quantiles (origin->dispatch/detect/action) as counters. "
        "Machine-dependent; not baseline-gated."
    ),
    "context": doc.get("context", {}),
    "benchmarks": doc.get("benchmarks", []),
}
errors = [b["name"] for b in out["benchmarks"] if b.get("error_occurred")]
for bench in out["benchmarks"]:
    if bench.get("run_type") == "aggregate":
        continue
    name = bench["name"]
    t = bench.get("real_time")
    unit = bench.get("time_unit", "ns")
    ips = bench.get("items_per_second")
    line = f"  {name:55s} {t:10.1f} {unit}"
    if ips:
        line += f"   {ips / 1e3:10.1f} K items/s"
    print(line)
with open(sys.argv[2], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
strict = os.environ.get("SENTINEL_BENCH_STRICT") == "1"
for name in errors:
    print(f"{'ERROR' if strict else 'WARNING'}: {name} failed to run")
if strict and errors:
    sys.exit(1)
PY

# Commit-path artifact: per-commit-fsync seed vs WAL group commit vs async
# commit across 1..8 committer threads. The strict gate is the WITHIN-RUN
# speedup at 8 threads (group or async vs the per-fsync baseline measured in
# the same run, on the same disk), so it is robust to machine-to-machine
# fsync variance; the checked-in bench_baseline.json entries are a
# conservative seed reference that only trips on catastrophic regressions
# (losing group commit entirely). Note: for these ->Threads(n)->UseRealTime()
# benchmarks items_per_second is already the AGGREGATE commit rate (the
# per-fsync run cannot exceed 1/fsync_latency at any thread count, and
# that is what it reports) — do not multiply by threads.
COMMIT_OUT="$(dirname "${OUT}")/BENCH_commit.json"
python3 - "${BASELINE}" "${tmpdir}/commit.json" "${COMMIT_OUT}" <<'PY'
import json
import os
import sys

with open(sys.argv[1]) as f:
    baseline = json.load(f)
with open(sys.argv[2]) as f:
    doc = json.load(f)

times = {}
rates = {}
for bench in doc.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    times[bench["name"]] = bench.get("real_time")
    rates[bench["name"]] = bench.get("items_per_second")


def bname(family, threads):
    return f"{family}/real_time/threads:{threads}"


out = {
    "description": (
        "Commit-path throughput: one Begin/Insert(64B)/Commit transaction "
        "per iteration. BM_CommitPerFsync = seed one-fsync-per-commit, "
        "BM_CommitGroup = leader/follower group commit (sync ack), "
        "BM_CommitAsync = ack on WAL-buffer write. items_per_second is the "
        "aggregate commit rate; speedup_vs_per_fsync compares against the "
        "per-fsync run at the same thread count within this run."
    ),
    "context": doc.get("context", {}),
    "benchmarks": doc.get("benchmarks", []),
    "aggregate_commits_per_second": rates,
    "speedup_vs_per_fsync": {},
}

strict = os.environ.get("SENTINEL_BENCH_STRICT") == "1"
failures = []

for family in ("BM_CommitGroup", "BM_CommitAsync"):
    for threads in (1, 2, 4, 8):
        base = rates.get(bname("BM_CommitPerFsync", threads))
        rate = rates.get(bname(family, threads))
        if base and rate:
            out["speedup_vs_per_fsync"][bname(family, threads)] = rate / base

at8 = [
    out["speedup_vs_per_fsync"].get(bname(f, 8))
    for f in ("BM_CommitGroup", "BM_CommitAsync")
]
at8 = [s for s in at8 if s is not None]
best8 = max(at8) if at8 else 0.0
out["best_speedup_at_8_threads"] = best8
if best8 < 5.0:
    failures.append(
        f"best 8-thread commit speedup {best8:.2f}x vs per-commit-fsync "
        "baseline is below the 5x acceptance floor"
    )

# Sync-mode single-thread latency parity: group commit's leader path must
# stay close to the seed inline-fsync path (no per-commit thread handoff).
g1 = times.get(bname("BM_CommitGroup", 1))
p1 = times.get(bname("BM_CommitPerFsync", 1))
if g1 and p1:
    ratio = g1 / p1
    out["sync_single_thread_latency_ratio"] = ratio
    if ratio > 1.10:
        print(
            f"WARNING: group-commit single-thread sync latency is "
            f"{ratio:.2f}x the per-fsync seed (>1.10x target)"
        )

# Conservative checked-in baseline (same >10% semantics as the dispatch
# artifact): entries are seed per-commit-fsync references, so a trip means
# the commit path got slower than before group commit existed.
base_times = baseline.get("benchmarks", {})
out["baseline_speedups"] = {}
for name, entry in sorted(base_times.items()):
    if not name.startswith("BM_Commit") or name not in times:
        continue
    speedup = entry["real_time_ns"] / times[name]
    out["baseline_speedups"][name] = speedup
    if speedup < 1 / 1.10:
        failures.append(
            f"{name} regressed >10% vs checked-in seed reference "
            f"({entry['real_time_ns']:.0f} ns -> {times[name]:.0f} ns)"
        )

for name in sorted(rates):
    rate = rates[name]
    if rate is None:
        continue
    line = f"  {name:45s} {times[name]:12.1f} ns   {rate:12.1f} commits/s"
    speedup = out["speedup_vs_per_fsync"].get(name)
    if speedup is not None:
        line += f"   {speedup:6.2f}x vs per-fsync"
    print(line)
print(f"  best 8-thread speedup vs per-commit-fsync: {best8:.2f}x")

with open(sys.argv[3], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

for msg in failures:
    print(f"{'ERROR' if strict else 'WARNING'}: {msg}")
if strict and failures:
    sys.exit(1)
PY

echo "wrote ${OUT}"
echo "wrote ${MONITOR_OUT}"
echo "wrote ${NET_OUT}"
echo "wrote ${COMMIT_OUT}"
echo "wrote ${PROFILE_OUT}"
echo "metrics snapshots (if any) in ${METRICS_DIR}/"
