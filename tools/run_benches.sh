#!/usr/bin/env bash
# Runs the dispatch-path benchmarks and merges their JSON output into one
# artifact, BENCH_dispatch.json, annotated with aggregate multi-thread
# throughput (the benchmark library reports per-thread-normalized rates for
# ->Threads(n) runs, so the aggregate is items_per_second * threads).
#
# Usage: tools/run_benches.sh [--strict] [build_dir] [out_json]
#   --strict   exit non-zero when a BM_Notify* benchmark regresses >10%
#              against tools/bench_baseline.json (default: warn only)
#   build_dir  defaults to ./build (must contain bench/ binaries)
#   out_json   defaults to BENCH_dispatch.json in the current directory
#
# Note: the bundled Google Benchmark predates duration-suffixed
# --benchmark_min_time values; pass plain seconds (0.2, not "0.2s").
set -euo pipefail

STRICT=0
positional=()
for arg in "$@"; do
  case "${arg}" in
    --strict) STRICT=1 ;;
    *) positional+=("${arg}") ;;
  esac
done

BUILD_DIR="${positional[0]:-build}"
OUT="${positional[1]:-BENCH_dispatch.json}"
MIN_TIME="${BENCH_MIN_TIME:-0.2}"
export SENTINEL_BENCH_STRICT="${STRICT}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

# Each benchmark with a DumpMetricsSnapshot hook leaves an observability
# snapshot (ActiveDatabase::StatsJson) next to the timing artifact.
METRICS_DIR="${SENTINEL_BENCH_METRICS_DIR:-BENCH_metrics}"
mkdir -p "${METRICS_DIR}"
export SENTINEL_BENCH_METRICS_DIR="${METRICS_DIR}"

run() {
  local bin="$1" filter="$2" out="$3"
  "${BUILD_DIR}/bench/${bin}" \
    --benchmark_filter="${filter}" \
    --benchmark_min_time="${MIN_TIME}" \
    --benchmark_format=json \
    --benchmark_out="${out}" \
    --benchmark_out_format=json >/dev/null
}

run bench_primitive_events 'BM_Notify.*' "${tmpdir}/primitive.json"
run bench_threading 'BM_NotifyConcurrent.*' "${tmpdir}/threading.json"
run bench_span_overhead 'BM_Span.*' "${tmpdir}/span.json"

BASELINE="$(dirname "$0")/bench_baseline.json"

python3 - "${BASELINE}" "${tmpdir}/primitive.json" "${tmpdir}/threading.json" \
    "${tmpdir}/span.json" "${OUT}" <<'PY'
import json
import os
import re
import sys

baseline_path = sys.argv[1]
merged = {"context": None, "benchmarks": []}
for path in sys.argv[2:-1]:
    with open(path) as f:
        doc = json.load(f)
    if merged["context"] is None:
        merged["context"] = doc.get("context", {})
    merged["benchmarks"].extend(doc.get("benchmarks", []))

for bench in merged["benchmarks"]:
    m = re.search(r"/threads:(\d+)", bench.get("name", ""))
    if m and "items_per_second" in bench:
        threads = int(m.group(1))
        bench["threads"] = threads
        bench["aggregate_items_per_second"] = (
            bench["items_per_second"] * threads
        )

# Fold in the checked-in pre-PR baseline and per-benchmark speedups so the
# artifact is self-contained evidence of the improvement. BM_Notify* entries
# that regress more than 10% against the baseline get a printed warning;
# with --strict (SENTINEL_BENCH_STRICT=1) they fail the run instead, so CI
# can gate on dispatch-path regressions.
regressions = []
if os.path.exists(baseline_path):
    with open(baseline_path) as f:
        baseline = json.load(f)
    merged["pre_pr_baseline"] = baseline
    base_times = baseline.get("benchmarks", {})
    for bench in merged["benchmarks"]:
        base = base_times.get(bench.get("name"))
        if base and bench.get("real_time"):
            speedup = base["real_time_ns"] / bench["real_time"]
            bench["speedup_vs_baseline"] = speedup
            if bench["name"].startswith("BM_Notify") and speedup < 1 / 1.10:
                regressions.append(
                    (bench["name"], base["real_time_ns"], bench["real_time"])
                )

with open(sys.argv[-1], "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")

strict = os.environ.get("SENTINEL_BENCH_STRICT") == "1"
for name, base_ns, now_ns in regressions:
    severity = "ERROR" if strict else "WARNING"
    print(
        f"{severity}: {name} regressed >10% vs baseline "
        f"({base_ns:.1f} ns -> {now_ns:.1f} ns)."
    )

for bench in merged["benchmarks"]:
    if bench.get("run_type") == "aggregate":
        continue
    name = bench["name"]
    t = bench.get("real_time")
    unit = bench.get("time_unit", "ns")
    agg = bench.get("aggregate_items_per_second")
    line = f"  {name:55s} {t:10.1f} {unit}"
    if agg is not None:
        line += f"   aggregate {agg / 1e6:8.2f} M items/s"
    speedup = bench.get("speedup_vs_baseline")
    if speedup is not None:
        line += f"   {speedup:.2f}x vs baseline"
    print(line)

if strict and regressions:
    sys.exit(1)
PY

echo "wrote ${OUT}"
echo "metrics snapshots (if any) in ${METRICS_DIR}/"
