#!/usr/bin/env python3
"""Validates Prometheus text exposition (format 0.0.4) scraped from
/metrics. Checks the properties a real Prometheus server enforces on
ingest, so CI catches a malformed exposition before an operator's scraper
does:

  - every sample line parses as  name{labels} value ;
  - every sampled family has exactly one # HELP and one # TYPE line,
    emitted before its first sample;
  - histogram _bucket series have numerically increasing le labels per
    labelset, cumulative non-decreasing values, a closing le="+Inf" bucket,
    and _count == the +Inf bucket;
  - counter/histogram values are non-negative finite numbers (gauges may
    be negative: clock offsets are signed).

Usage: check_exposition.py [--require PREFIX]... [<file>]
       (or pipe the body on stdin)
Each --require asserts that at least one sampled family starts with
PREFIX — CI uses it to pin down families that must be present.
Exits non-zero with a description of the first violation.
"""

import argparse
import math
import re
import sys
from collections import defaultdict

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(msg: str) -> None:
    print(f"exposition check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("path", nargs="?", help="exposition body (default stdin)")
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="PREFIX",
        help="fail unless some sampled family starts with PREFIX",
    )
    args = ap.parse_args()
    text = open(args.path).read() if args.path else sys.stdin.read()
    helps: dict[str, int] = defaultdict(int)
    types: dict[str, str] = {}
    type_counts: dict[str, int] = defaultdict(int)
    samples = []  # (name, labels dict, raw labels str, value)

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            helps[name] += 1
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            name, kind = parts[2], parts[3]
            type_counts[name] += 1
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"line {lineno}: unparseable sample: {line!r}")
        name, _, labels_raw, value_raw = m.groups()
        labels = dict(LABEL_RE.findall(labels_raw or ""))
        if value_raw != "+Inf":
            try:
                value = float(value_raw)
            except ValueError:
                fail(f"line {lineno}: bad value {value_raw!r}")
            if math.isnan(value):
                fail(f"line {lineno}: NaN value in {line!r}")
        samples.append((name, labels, labels_raw or "", float(value)))

    if not samples:
        fail("no samples found")

    # Family bookkeeping: strip histogram suffixes back to the family name.
    def family_of(name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                return name[: -len(suffix)]
        return name

    seen_families = set()
    for name, labels, _, value in samples:
        family = family_of(name)
        seen_families.add(family)
        if family not in types:
            fail(f"family {family} sampled without a # TYPE line")
        if helps[family] != 1:
            fail(f"family {family}: {helps[family]} HELP lines (want 1)")
        if type_counts[family] != 1:
            fail(f"family {family}: {type_counts[family]} TYPE lines")
        # Only gauges may go negative (signed clock offsets); a negative
        # counter or histogram series is a bug a scraper would reject.
        if value < 0 and types[family] != "gauge":
            fail(f"family {family}: negative {types[family]} value {value}")

    for prefix in args.require:
        if not any(f.startswith(prefix) for f in seen_families):
            fail(f"no sampled family starts with required prefix {prefix!r}")

    # Histogram shape per (family, labelset-without-le).
    buckets: dict[tuple, list] = defaultdict(list)
    counts: dict[tuple, float] = {}
    for name, labels, _, value in samples:
        family = family_of(name)
        if types.get(family) != "histogram":
            continue
        key_labels = tuple(
            sorted((k, v) for k, v in labels.items() if k != "le")
        )
        if name.endswith("_bucket"):
            buckets[(family, key_labels)].append((labels.get("le"), value))
        elif name.endswith("_count"):
            counts[(family, key_labels)] = value

    for (family, key_labels), series in buckets.items():
        prev_le = -1.0
        prev_value = -1.0
        if series[-1][0] != "+Inf":
            fail(f"{family}{dict(key_labels)}: last bucket is not +Inf")
        for le_raw, value in series:
            le = math.inf if le_raw == "+Inf" else float(le_raw)
            if le <= prev_le:
                fail(f"{family}{dict(key_labels)}: le not increasing "
                     f"({le_raw} after {prev_le})")
            if value < prev_value:
                fail(f"{family}{dict(key_labels)}: buckets not cumulative "
                     f"({value} after {prev_value})")
            prev_le, prev_value = le, value
        count = counts.get((family, key_labels))
        if count is not None and count != series[-1][1]:
            fail(f"{family}{dict(key_labels)}: _count {count} != "
                 f"+Inf bucket {series[-1][1]}")

    print(
        f"exposition OK: {len(samples)} samples across "
        f"{len(seen_families)} families, "
        f"{len(buckets)} histogram series validated"
    )


if __name__ == "__main__":
    main()
