// Quickstart: the paper's STOCK example (§3.1) end to end.
//
// Demonstrates:
//   - declaring a reactive class with an event interface through the
//     Sentinel specification language,
//   - primitive + composite (AND) event detection,
//   - an ECA rule with condition and action,
//   - transactions raising the system events.
//
// Build & run:  ./build/examples/example_quickstart

#include <cstdio>
#include <memory>

#include "core/active_database.h"
#include "core/reactive.h"
#include "preproc/compiler.h"

using sentinel::core::ActiveDatabase;
using sentinel::core::Reactive;
using sentinel::oodb::Value;
using sentinel::rules::RuleContext;

namespace {

// The user class, written the way the Sentinel post-processor would emit it:
// each event-generating method collects its parameters and notifies the
// local event detector at begin/end.
class Stock : public Reactive {
 public:
  Stock(ActiveDatabase* db, sentinel::oodb::Oid oid)
      : Reactive(db, "STOCK", oid) {}

  int sell_stock(int qty) {
    MethodScope scope(this, "int sell_stock(int qty)");
    scope.Param("qty", Value::Int(qty));
    scope.EnterBody();
    std::printf("  [app] sell_stock(%d)\n", qty);
    return qty;
  }

  void set_price(double price) {
    MethodScope scope(this, "void set_price(float price)");
    scope.Param("price", Value::Double(price));
    scope.EnterBody();
    (void)SetAttr("price", Value::Double(price));
    std::printf("  [app] set_price(%.2f)\n", price);
  }
};

constexpr char kSpec[] = R"spec(
  class STOCK : REACTIVE {
    attr price: double;
    event end(e1) int sell_stock(int qty);
    event begin(e2) && end(e3) void set_price(float price);
    event e4 = e1 ^ e2;   /* AND: a sale and a price change both occurred */
    rule R1(e4, bigTrade, reportTrade, RECENT, IMMEDIATE, 10, NOW);
  }
)spec";

}  // namespace

int main() {
  ActiveDatabase db;
  if (auto st = db.Open("/tmp/sentinel_quickstart"); !st.ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Register the condition/action functions referenced by the spec, then
  // load the spec (the pre-processor pipeline).
  sentinel::preproc::FunctionRegistry functions;
  functions.RegisterCondition("bigTrade", [](const RuleContext& ctx) {
    auto qty = ctx.Param("qty");
    return qty.ok() && qty->AsInt() >= 100;
  });
  functions.RegisterAction("reportTrade", [](const RuleContext& ctx) {
    auto qty = ctx.Param("qty");
    auto price = ctx.Param("price");
    std::printf("  [rule R1] big trade: qty=%lld at price=%.2f\n",
                qty.ok() ? static_cast<long long>(qty->AsInt()) : -1,
                price.ok() ? price->AsDouble() : 0.0);
  });
  sentinel::preproc::SpecCompiler compiler(&db, &functions);
  if (auto st = compiler.LoadString(kSpec); !st.ok()) {
    std::fprintf(stderr, "spec failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("-- transaction 1: small trade (rule must stay silent)\n");
  auto txn = db.Begin();
  auto oid = db.CreateObject(*txn, "STOCK", "IBM");
  Stock ibm(&db, *oid);
  ibm.set_current_txn(*txn);
  ibm.sell_stock(10);     // e1
  ibm.set_price(101.5);   // e2 -> e4 = e1 ^ e2 fires, but condition is false
  (void)db.Commit(*txn);

  std::printf("-- transaction 2: big trade (rule fires)\n");
  auto txn2 = db.Begin();
  ibm.set_current_txn(*txn2);
  ibm.sell_stock(500);    // e1
  ibm.set_price(99.25);   // e2 -> e4 fires, condition true
  (void)db.Commit(*txn2);

  std::printf("done: %llu events notified, rule fired %llu time(s)\n",
              static_cast<unsigned long long>(db.detector()->notify_count()),
              static_cast<unsigned long long>(
                  (*db.rule_manager()->Find("R1"))->fired_count()));
  (void)db.Close();
  std::remove("/tmp/sentinel_quickstart.db");
  std::remove("/tmp/sentinel_quickstart.wal");
  return 0;
}
