// Audit replay: batch (after-the-fact) composite event detection over a
// stored event log (paper §2.1: "the composite event detector needs to
// support detection of events ... over a stored event-log (in batch mode)").
//
// Phase 1 (online): an application runs with an event log attached; only a
// simple alerting rule is active.
// Phase 2 (batch): an auditor later replays the log against a *different*
// event graph — looking for a pattern nobody was watching for at run time
// (a withdrawal burst: three withdrawals with no deposit in between).

#include <cstdio>
#include <memory>

#include "core/active_database.h"
#include "core/reactive.h"
#include "detector/event_log.h"

using sentinel::core::ActiveDatabase;
using sentinel::core::Reactive;
using sentinel::detector::EventLog;
using sentinel::detector::EventModifier;
using sentinel::detector::ParamContext;
using sentinel::oodb::Value;
using sentinel::rules::RuleContext;

namespace {

class Account : public Reactive {
 public:
  Account(ActiveDatabase* db, sentinel::oodb::Oid oid)
      : Reactive(db, "Account", oid) {}
  void withdraw(int amount) {
    MethodScope scope(this, "void withdraw(int amount)");
    scope.Param("amount", Value::Int(amount));
    scope.EnterBody();
  }
  void deposit(int amount) {
    MethodScope scope(this, "void deposit(int amount)");
    scope.Param("amount", Value::Int(amount));
    scope.EnterBody();
  }
};

constexpr char kLogPath[] = "/tmp/sentinel_audit.evlog";

}  // namespace

int main() {
  std::remove(kLogPath);

  // ---- Phase 1: online operation with logging --------------------------------
  {
    ActiveDatabase db;
    if (!db.OpenInMemory().ok()) return 1;
    EventLog log;
    if (!log.OpenFile(kLogPath).ok()) return 1;
    log.AttachTo(db.detector());

    (void)db.DeclareEvent("withdraw_ev", "Account", EventModifier::kEnd,
                          "void withdraw(int amount)");
    (void)db.DeclareEvent("deposit_ev", "Account", EventModifier::kEnd,
                          "void deposit(int amount)");
    (void)db.rule_manager()->DefineRule(
        "large_withdrawal", "withdraw_ev",
        [](const RuleContext& ctx) {
          return ctx.Param("amount")->AsInt() > 900;
        },
        [](const RuleContext& ctx) {
          std::printf("  [online alert] large withdrawal: %lld\n",
                      static_cast<long long>(ctx.Param("amount")->AsInt()));
        });

    std::printf("-- online phase\n");
    auto txn = db.Begin();
    Account acct(&db, 1);
    acct.set_current_txn(*txn);
    acct.withdraw(200);
    acct.withdraw(300);
    acct.withdraw(950);  // alert fires online
    acct.deposit(100);
    acct.withdraw(50);
    (void)db.Commit(*txn);
    std::printf("  logged %zu primitive events to %s\n", log.size(), kLogPath);
    (void)log.Close();
    (void)db.Close();
  }

  // ---- Phase 2: batch audit over the stored log ---------------------------------
  {
    std::printf("-- batch audit phase\n");
    ActiveDatabase auditor;
    if (!auditor.OpenInMemory().ok()) return 1;
    // Disable transaction-boundary flushing: batch audits deliberately look
    // across the whole log.
    (void)auditor.rule_manager()->DisableRule(
        ActiveDatabase::kFlushOnCommitRule);
    (void)auditor.rule_manager()->DisableRule(
        ActiveDatabase::kFlushOnAbortRule);

    auto w = auditor.DeclareEvent("withdraw_ev", "Account", EventModifier::kEnd,
                                  "void withdraw(int amount)");
    auto d = auditor.DeclareEvent("deposit_ev", "Account", EventModifier::kEnd,
                                  "void deposit(int amount)");
    // Burst pattern: withdraw ; withdraw ; withdraw with NO deposit inside —
    // NOT(deposit)[withdraw then withdraw, withdraw].
    auto ww = auditor.detector()->DefineSeq("w_then_w", *w, *w);
    auto burst = auditor.detector()->DefineNot("withdraw_burst", *ww, *d, *w);
    if (!burst.ok()) return 1;
    (void)auditor.rule_manager()->DefineRule(
        "burst_report", "withdraw_burst", nullptr,
        [](const RuleContext& ctx) {
          long long total = 0;
          for (const auto& c : ctx.occurrence->Of("withdraw_ev")) {
            total += c->params->Get("amount")->AsInt();
          }
          std::printf("  [audit] withdrawal burst detected (3 withdrawals, "
                      "total %lld, no deposit in between)\n",
                      total);
        });

    EventLog log;
    if (!log.OpenFile(kLogPath).ok()) return 1;
    if (auto st = log.Replay(auditor.detector()); !st.ok()) {
      std::fprintf(stderr, "replay failed: %s\n", st.ToString().c_str());
      return 1;
    }
    auditor.scheduler()->Drain();
    std::printf("done: replayed %llu events\n",
                static_cast<unsigned long long>(
                    auditor.detector()->notify_count()));
    (void)log.Close();
    (void)auditor.Close();
  }
  std::remove(kLogPath);
  return 0;
}
