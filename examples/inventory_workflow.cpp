// Inventory workflow: inter-application (global) events and detached rules
// (paper Fig. 2 and §2.1 "Inter-application (global) events ... especially
// useful for cooperative transactions and workflow applications").
//
// Two applications share a warehouse workflow:
//   - `orders`   submits purchase orders,
//   - `shipping` dispatches shipments.
// The global event detector watches SEQ(order_submitted ; shipment_sent)
// across the two applications and, when an order ships, delivers the global
// event back into the `orders` application where a DETACHED rule records the
// fulfilment in its own top-level transaction.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "core/active_database.h"
#include "core/reactive.h"
#include "ged/global_detector.h"

using sentinel::core::ActiveDatabase;
using sentinel::core::Reactive;
using sentinel::detector::EventModifier;
using sentinel::detector::ParamContext;
using sentinel::oodb::Value;
using sentinel::rules::CouplingMode;
using sentinel::rules::RuleContext;
using sentinel::rules::RuleManager;

namespace {

class Order : public Reactive {
 public:
  Order(ActiveDatabase* db, sentinel::oodb::Oid oid)
      : Reactive(db, "Order", oid) {}
  void submit(int order_id, int qty) {
    MethodScope scope(this, "void submit(int order_id, int qty)");
    scope.Param("order_id", Value::Int(order_id));
    scope.Param("qty", Value::Int(qty));
    scope.EnterBody();
    std::printf("  [orders]   order %d submitted (qty %d)\n", order_id, qty);
  }
  void confirm(int order_id) {
    MethodScope scope(this, "void confirm(int order_id)");
    scope.Param("order_id", Value::Int(order_id));
    scope.EnterBody();
    std::printf("  [orders]   order %d confirmed\n", order_id);
  }
};

class Shipment : public Reactive {
 public:
  Shipment(ActiveDatabase* db, sentinel::oodb::Oid oid)
      : Reactive(db, "Shipment", oid) {}
  void dispatch(int order_id) {
    MethodScope scope(this, "void dispatch(int order_id)");
    scope.Param("order_id", Value::Int(order_id));
    scope.EnterBody();
    std::printf("  [shipping] order %d dispatched\n", order_id);
  }
};

}  // namespace

int main() {
  ActiveDatabase orders, shipping;
  if (!orders.OpenInMemory().ok() || !shipping.OpenInMemory().ok()) return 1;

  // SENTINEL_TRACE_EXPORT=<path>: record full causal spans and export them
  // as Chrome trace JSON at the end (load the file in ui.perfetto.dev).
  const char* trace_path = std::getenv("SENTINEL_TRACE_EXPORT");
  if (trace_path != nullptr) {
    orders.span_tracer()->set_mode(sentinel::obs::TraceMode::kFull);
    shipping.span_tracer()->set_mode(sentinel::obs::TraceMode::kFull);
  }

  sentinel::ged::GlobalEventDetector ged;
  (void)ged.RegisterApplication("orders", &orders);
  (void)ged.RegisterApplication("shipping", &shipping);

  // Global primitives mirroring each application's events.
  auto submitted = ged.DefineGlobalPrimitive(
      "order_submitted", "orders", "Order", EventModifier::kEnd,
      "void submit(int order_id, int qty)");
  auto dispatched = ged.DefineGlobalPrimitive(
      "shipment_sent", "shipping", "Shipment", EventModifier::kEnd,
      "void dispatch(int order_id)");
  if (!submitted.ok() || !dispatched.ok()) return 1;

  // Global composite: an order was submitted and later shipped.
  (void)ged.graph()->DefineSeq("order_fulfilled", *submitted, *dispatched);

  // The orders application handles fulfilment with a DETACHED rule: it runs
  // in its own top-level transaction, independent of whoever triggered it.
  (void)orders.detector()->DefineExplicit("fulfilment");
  RuleManager::RuleOptions detached;
  detached.coupling = CouplingMode::kDetached;
  (void)orders.rule_manager()->DefineRule(
      "record_fulfilment", "fulfilment", nullptr,
      [](const RuleContext& ctx) {
        std::printf("  [orders, detached txn %llu] order %lld fulfilled\n",
                    static_cast<unsigned long long>(ctx.txn),
                    static_cast<long long>(ctx.Param("order_id")->AsInt()));
      },
      detached);
  (void)ged.DeliverTo("order_fulfilled", "orders", "fulfilment");

  // Local composite inside the orders application: an order submitted and
  // then confirmed in the same transaction finalizes it — an IMMEDIATE rule
  // runs as a subtransaction of the submitting transaction. (This is the
  // txn → notify → composite_detect → subtxn chain a full span trace shows
  // as one tree.)
  auto submitted_l = orders.DeclareEvent(
      "order_submitted_l", "Order", EventModifier::kEnd,
      "void submit(int order_id, int qty)");
  auto confirmed_l = orders.DeclareEvent(
      "order_confirmed_l", "Order", EventModifier::kEnd,
      "void confirm(int order_id)");
  if (!submitted_l.ok() || !confirmed_l.ok()) return 1;
  (void)orders.detector()->DefineSeq("order_finalized", *submitted_l,
                                     *confirmed_l);
  (void)orders.rule_manager()->DefineRule(
      "log_finalized", "order_finalized", nullptr,
      [](const RuleContext& ctx) {
        std::printf("  [orders, subtxn %llu] order %lld finalized\n",
                    static_cast<unsigned long long>(ctx.subtxn),
                    static_cast<long long>(ctx.Param("order_id")->AsInt()));
      },
      RuleManager::RuleOptions{});

  std::printf("-- workflow run\n");
  auto otxn = orders.Begin();
  Order order(&orders, 1);
  order.set_current_txn(*otxn);
  order.submit(4711, 12);
  order.confirm(4711);
  (void)orders.Commit(*otxn);

  auto stxn = shipping.Begin();
  Shipment shipment(&shipping, 1);
  shipment.set_current_txn(*stxn);
  shipment.dispatch(4711);
  (void)shipping.Commit(*stxn);

  // Wait for the asynchronous global detection + detached execution.
  ged.WaitQuiescent();
  orders.scheduler()->WaitDetached();

  std::printf("done: GED forwarded %llu events\n",
              static_cast<unsigned long long>(ged.forwarded_count()));

  if (trace_path != nullptr) {
    sentinel::Status st = orders.ExportTrace(trace_path);
    if (st.ok()) {
      std::printf("trace written to %s (load in ui.perfetto.dev)\n",
                  trace_path);
    } else {
      std::printf("trace export failed: %s\n", st.ToString().c_str());
    }
  }
  // SENTINEL_MONITOR_HOLD_MS=<ms>: keep the process (and therefore the
  // monitor endpoint started via SENTINEL_MONITOR_PORT) alive so an external
  // scraper can curl /metrics and /healthz — the CI monitoring smoke test.
  if (const char* hold = std::getenv("SENTINEL_MONITOR_HOLD_MS")) {
    const long ms = std::strtol(hold, nullptr, 10);
    if (ms > 0) {
      if (auto* server = orders.monitor_server()) {
        std::printf("monitor listening on 127.0.0.1:%d for %ld ms\n",
                    server->port(), ms);
      }
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  }
  (void)orders.Close();
  (void)shipping.Close();
  return 0;
}
