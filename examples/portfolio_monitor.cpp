// Portfolio monitor: parameter contexts, coupling modes and rule priorities
// on a trading workload — the application domain the paper's STOCK class
// sketches.
//
// Demonstrates:
//   - one shared event graph detecting in several parameter contexts,
//   - an IMMEDIATE alerting rule vs. a DEFERRED end-of-transaction summary
//     (the A*(begin, E, pre_commit) rewrite),
//   - priority classes ordering rule execution,
//   - the rule debugger's trace output.

#include <cstdio>
#include <memory>

#include "core/active_database.h"
#include "core/reactive.h"
#include "debug/rule_debugger.h"

using sentinel::core::ActiveDatabase;
using sentinel::core::Reactive;
using sentinel::detector::EventModifier;
using sentinel::detector::ParamContext;
using sentinel::oodb::Value;
using sentinel::rules::CouplingMode;
using sentinel::rules::RuleContext;
using sentinel::rules::RuleManager;

namespace {

class Position : public Reactive {
 public:
  Position(ActiveDatabase* db, sentinel::oodb::Oid oid, const char* symbol)
      : Reactive(db, "Position", oid), symbol_(symbol) {}

  void trade(int qty, double price) {
    MethodScope scope(this, "void trade(int qty, float price)");
    scope.Param("symbol", Value::String(symbol_));
    scope.Param("qty", Value::Int(qty));
    scope.Param("price", Value::Double(price));
    scope.EnterBody();
  }

 private:
  std::string symbol_;
};

}  // namespace

int main() {
  ActiveDatabase db;
  if (auto st = db.OpenInMemory(); !st.ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
    return 1;
  }
  sentinel::debug::RuleDebugger debugger;
  debugger.Attach(&db);

  (void)db.DeclareEvent("trade_ev", "Position", EventModifier::kEnd,
                        "void trade(int qty, float price)");

  RuleManager* rules = db.rule_manager();
  (void)rules->DefinePriorityClass("critical", 100);
  (void)rules->DefinePriorityClass("routine", 10);

  // IMMEDIATE, high priority: alert on any large trade, as it happens.
  RuleManager::RuleOptions alert_options;
  alert_options.context = ParamContext::kRecent;
  auto alert = rules->DefineRuleWithPriorityClass(
      "large_trade_alert", "trade_ev",
      [](const RuleContext& ctx) { return ctx.Param("qty")->AsInt() >= 1000; },
      [](const RuleContext& ctx) {
        std::printf("  [ALERT] large trade: %s qty=%lld\n",
                    ctx.Param("symbol")->AsString().c_str(),
                    static_cast<long long>(ctx.Param("qty")->AsInt()));
      },
      alert_options, "critical");
  if (!alert.ok()) return 1;

  // IMMEDIATE, low priority: audit every trade (runs after the alert).
  RuleManager::RuleOptions audit_options;
  (void)rules->DefineRuleWithPriorityClass(
      "trade_audit", "trade_ev", nullptr,
      [](const RuleContext& ctx) {
        std::printf("  [audit] %s qty=%lld @ %.2f\n",
                    ctx.Param("symbol")->AsString().c_str(),
                    static_cast<long long>(ctx.Param("qty")->AsInt()),
                    ctx.Param("price")->AsDouble());
      },
      audit_options, "routine");

  // DEFERRED + CUMULATIVE: end-of-transaction summary over the net effect —
  // the paper's A*(begin_transaction, trade_ev, pre_commit) rewrite fires it
  // exactly once with every trade of the transaction.
  RuleManager::RuleOptions summary_options;
  summary_options.coupling = CouplingMode::kDeferred;
  summary_options.context = ParamContext::kCumulative;
  (void)rules->DefineRule(
      "txn_summary", "trade_ev", nullptr,
      [](const RuleContext& ctx) {
        const auto trades = ctx.occurrence->Of("trade_ev");
        long long volume = 0;
        for (const auto& t : trades) {
          volume += t->params->Get("qty")->AsInt();
        }
        std::printf("  [summary @ pre-commit] %zu trades, total volume %lld\n",
                    trades.size(), volume);
      },
      summary_options);

  std::printf("-- trading session (one transaction)\n");
  auto txn = db.Begin();
  Position ibm(&db, 1, "IBM");
  Position dec(&db, 2, "DEC");
  ibm.set_current_txn(*txn);
  dec.set_current_txn(*txn);
  ibm.trade(200, 101.25);
  dec.trade(1500, 44.10);   // triggers the alert
  ibm.trade(50, 101.50);
  std::printf("-- committing (deferred summary fires now)\n");
  (void)db.Commit(*txn);

  std::printf("\n-- debugger trace --\n%s", debugger.RenderTrace().c_str());
  std::printf("-- event graph (DOT) --\n%s",
              sentinel::debug::RuleDebugger::EventGraphDot(&db).c_str());
  (void)db.Close();
  return 0;
}
