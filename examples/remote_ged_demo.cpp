// Remote GED demo: the paper's Fig. 2 global event detector as a network
// daemon, with applications in separate processes.
//
// One binary, two roles:
//
//   # terminal 1 — the GED daemon (bus on 9475, monitor on 9464):
//   ./build/examples/example_remote_ged_demo daemon 9475 9464
//
//   # terminal 2 — an application that declares a global primitive,
//   # subscribes to it, and streams 20 events:
//   ./build/examples/example_remote_ged_demo client 9475 inventory 20
//
//   # terminal 3 — a second application sharing the same bus:
//   ./build/examples/example_remote_ged_demo client 9475 billing 20
//
// While both clients run, `curl 127.0.0.1:9464/metrics | grep sentinel_net`
// shows the daemon-side session/admission counters, and /healthz flips to
// degraded if you flood the bus past its admission capacity.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "core/active_database.h"
#include "ged/global_detector.h"
#include "net/event_bus_server.h"
#include "net/remote_client.h"

namespace {

using sentinel::detector::EventModifier;
using sentinel::detector::ParamContext;

int RunDaemon(int bus_port, int monitor_port, int seconds) {
  sentinel::core::ActiveDatabase db;
  if (!db.OpenInMemory().ok()) return 1;
  sentinel::ged::GlobalEventDetector ged;
  sentinel::net::EventBusServer server(&ged);

  sentinel::net::EventBusServer::Options options;
  options.port = bus_port;
  auto status = server.Start(options);
  if (!status.ok()) {
    std::fprintf(stderr, "daemon: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("[daemon] GED event bus on 127.0.0.1:%d\n", server.port());

  db.AttachEventBusServer(&server);
  if (monitor_port >= 0) {
    auto bound = db.StartMonitoring(monitor_port);
    if (bound.ok()) {
      std::printf("[daemon] monitor on http://127.0.0.1:%d "
                  "(/metrics /healthz)\n",
                  *bound);
    }
  }

  for (int i = 0; i < seconds; ++i) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    const auto stats = server.stats();
    std::printf("[daemon] sessions=%llu notifies=%llu dispatched=%llu "
                "pushes=%llu sheds=%llu%s\n",
                static_cast<unsigned long long>(stats.open_sessions),
                static_cast<unsigned long long>(stats.notifies_received),
                static_cast<unsigned long long>(stats.dispatched),
                static_cast<unsigned long long>(stats.pushes_sent),
                static_cast<unsigned long long>(stats.sheds),
                server.overloaded() ? "  [OVERLOADED]" : "");
  }

  db.AttachEventBusServer(nullptr);
  server.Stop();
  ged.Shutdown();
  (void)db.Close();
  std::printf("[daemon] done\n");
  return 0;
}

int RunClient(int bus_port, const std::string& app, int events) {
  sentinel::net::RemoteGedClient::Options options;
  options.port = bus_port;
  options.app_name = app;
  sentinel::net::RemoteGedClient client(options);
  if (!client.Start().ok()) return 1;
  if (!client.WaitConnected(std::chrono::milliseconds(10000))) {
    std::fprintf(stderr, "client: could not reach the daemon (%s)\n",
                 client.last_error().c_str());
    return 1;
  }
  std::printf("[%s] connected to 127.0.0.1:%d\n", app.c_str(), bus_port);

  // Declare a global primitive mirroring this application's sell events and
  // subscribe to its detections — the round trip app → GED → app.
  const std::string event = "g_" + app + "_sold";
  auto status = client.DefineGlobalPrimitive(event, "Order",
                                             EventModifier::kEnd,
                                             "void sell(int qty)");
  if (!status.ok()) {
    std::fprintf(stderr, "client: define failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::atomic<int> received{0};
  status = client.Subscribe(
      event, ParamContext::kRecent,
      [&](const std::string& name, const sentinel::detector::Occurrence& occ) {
        auto qty = occ.Param("qty");
        std::printf("  [%s] detection %s qty=%lld\n", app.c_str(),
                    name.c_str(),
                    qty.ok() ? static_cast<long long>(qty->AsInt()) : -1);
        received.fetch_add(1);
      });
  if (!status.ok()) return 1;

  for (int i = 1; i <= events; ++i) {
    auto params = std::make_shared<sentinel::detector::ParamList>();
    params->Insert("qty", sentinel::oodb::Value::Int(i));
    (void)client.NotifyMethod("Order", /*oid=*/1, EventModifier::kEnd,
                              "void sell(int qty)", params, /*txn=*/1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // At-most-once delivery: wait for what made it through, then report.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (received.load() < events &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const auto stats = client.stats();
  std::printf("[%s] sent=%llu received=%d dropped=%llu sheds=%llu "
              "reconnects=%llu\n",
              app.c_str(),
              static_cast<unsigned long long>(stats.notifies_sent),
              received.load(),
              static_cast<unsigned long long>(stats.notifies_dropped),
              static_cast<unsigned long long>(stats.sheds_received),
              static_cast<unsigned long long>(
                  stats.sessions_established > 0
                      ? stats.sessions_established - 1
                      : 0));
  client.Stop();
  return received.load() > 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "daemon") == 0) {
    const int bus_port = std::atoi(argv[2]);
    const int monitor_port = argc >= 4 ? std::atoi(argv[3]) : -1;
    const int seconds = argc >= 5 ? std::atoi(argv[4]) : 30;
    return RunDaemon(bus_port, monitor_port, seconds);
  }
  if (argc >= 5 && std::strcmp(argv[1], "client") == 0) {
    return RunClient(std::atoi(argv[2]), argv[3], std::atoi(argv[4]));
  }
  std::fprintf(stderr,
               "usage: %s daemon <bus_port> [monitor_port] [seconds]\n"
               "       %s client <bus_port> <app_name> <n_events>\n",
               argv[0], argv[0]);
  return 64;
}
