// Remote GED demo: the paper's Fig. 2 global event detector as a network
// daemon, with applications in separate processes.
//
// One binary, two roles:
//
//   # terminal 1 — the GED daemon (bus on 9475, monitor on 9464):
//   ./build/examples/example_remote_ged_demo daemon 9475 9464
//
//   # terminal 2 — an application that declares a global primitive,
//   # subscribes to it, and streams 20 events:
//   ./build/examples/example_remote_ged_demo client 9475 inventory 20
//
//   # terminal 3 — a second application sharing the same bus:
//   ./build/examples/example_remote_ged_demo client 9475 billing 20
//
// While both clients run, `curl 127.0.0.1:9464/metrics | grep sentinel_net`
// shows the daemon-side session/admission counters, and /healthz flips to
// degraded if you flood the bus past its admission capacity.
//
// Distributed tracing (DESIGN.md §14): set SENTINEL_TRACE_EXPORT=<prefix>
// on both processes and each writes a Chrome-trace JSON on exit — the
// daemon to <prefix>_daemon.json, a client to <prefix>_<app>.json, stamped
// with its process name and heartbeat-estimated clock offset. Merge them:
//
//   python3 tools/merge_traces.py --check --out merged.json <prefix>_*.json
//
// and the result loads in ui.perfetto.dev as one timeline: client txn →
// notify encode → server decode/admission/ged_forward → global detect →
// event-push → client condition/action.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "core/active_database.h"
#include "ged/global_detector.h"
#include "net/event_bus_server.h"
#include "net/remote_client.h"
#include "obs/span.h"

namespace {

using sentinel::detector::EventModifier;
using sentinel::detector::ParamContext;

// SENTINEL_TRACE_EXPORT names the per-process export prefix ("" = off).
std::string TraceExportPrefix() {
  const char* env = std::getenv("SENTINEL_TRACE_EXPORT");
  return env != nullptr ? std::string(env) : std::string();
}

int RunDaemon(int bus_port, int monitor_port, int seconds) {
  sentinel::core::ActiveDatabase db;
  if (!db.OpenInMemory().ok()) return 1;
  sentinel::ged::GlobalEventDetector ged;
  sentinel::net::EventBusServer server(&ged);

  const std::string trace_prefix = TraceExportPrefix();
  if (!trace_prefix.empty()) {
    db.span_tracer()->set_mode(sentinel::obs::TraceMode::kFull);
    ged.set_span_tracer(db.span_tracer());
    std::printf("[daemon] tracing to %s_daemon.json\n", trace_prefix.c_str());
  }

  sentinel::net::EventBusServer::Options options;
  options.port = bus_port;
  // Fast heartbeat so short-lived demo clients still yield a few RTT /
  // clock-offset samples on the per-session gauges before they exit.
  options.heartbeat_interval = std::chrono::milliseconds(500);
  auto status = server.Start(options);
  if (!status.ok()) {
    std::fprintf(stderr, "daemon: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("[daemon] GED event bus on 127.0.0.1:%d\n", server.port());

  db.AttachEventBusServer(&server);
  if (monitor_port >= 0) {
    auto bound = db.StartMonitoring(monitor_port);
    if (bound.ok()) {
      std::printf("[daemon] monitor on http://127.0.0.1:%d "
                  "(/metrics /healthz)\n",
                  *bound);
    }
  }

  for (int i = 0; i < seconds; ++i) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    const auto stats = server.stats();
    std::printf("[daemon] sessions=%llu notifies=%llu dispatched=%llu "
                "pushes=%llu sheds=%llu%s\n",
                static_cast<unsigned long long>(stats.open_sessions),
                static_cast<unsigned long long>(stats.notifies_received),
                static_cast<unsigned long long>(stats.dispatched),
                static_cast<unsigned long long>(stats.pushes_sent),
                static_cast<unsigned long long>(stats.sheds),
                server.overloaded() ? "  [OVERLOADED]" : "");
  }

  if (!trace_prefix.empty()) {
    sentinel::obs::SpanTracer::ExportMeta meta;
    meta.process = "daemon";  // the reference timeline: offset 0
    auto exported = db.span_tracer()->ExportChromeTrace(
        trace_prefix + "_daemon.json", meta);
    if (!exported.ok()) {
      std::fprintf(stderr, "daemon: trace export failed: %s\n",
                   exported.ToString().c_str());
    }
  }
  db.AttachEventBusServer(nullptr);
  server.Stop();
  ged.Shutdown();
  (void)db.Close();
  std::printf("[daemon] done\n");
  return 0;
}

int RunClient(int bus_port, const std::string& app, int events) {
  // The client is itself a (detector-only) active database: remote
  // detections re-enter it as an explicit event so a local ECA rule —
  // condition + action — closes the loop, and in traced mode those rule
  // spans join the distributed trace begun by the originating notify.
  sentinel::core::ActiveDatabase db;
  if (!db.OpenInMemory().ok()) return 1;
  const std::string trace_prefix = TraceExportPrefix();
  if (!trace_prefix.empty()) {
    db.span_tracer()->set_mode(sentinel::obs::TraceMode::kFull);
    std::printf("[%s] tracing to %s_%s.json\n", app.c_str(),
                trace_prefix.c_str(), app.c_str());
  }

  sentinel::net::RemoteGedClient::Options options;
  options.port = bus_port;
  options.app_name = app;
  // Ping briskly: short demo runs still collect RTT/clock-offset samples.
  options.ping_interval = std::chrono::milliseconds(200);
  sentinel::net::RemoteGedClient client(options);
  db.AttachRemoteGedClient(&client);
  if (!client.Start().ok()) return 1;
  if (!client.WaitConnected(std::chrono::milliseconds(10000))) {
    std::fprintf(stderr, "client: could not reach the daemon (%s)\n",
                 client.last_error().c_str());
    return 1;
  }
  std::printf("[%s] connected to 127.0.0.1:%d\n", app.c_str(), bus_port);

  // Declare a global primitive mirroring this application's sell events and
  // subscribe to its detections — the round trip app → GED → app.
  const std::string event = "g_" + app + "_sold";
  auto status = client.DefineGlobalPrimitive(event, "Order",
                                             EventModifier::kEnd,
                                             "void sell(int qty)");
  if (!status.ok()) {
    std::fprintf(stderr, "client: define failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  // Local ECA rule on an explicit event the push handler raises: the full
  // remote round trip ends in a condition + action firing in this process.
  const std::string local_event = "got_" + event;
  if (!db.detector()->DefineExplicit(local_event).ok()) return 1;
  std::atomic<int> fired{0};
  auto rule = db.rule_manager()->DefineRule(
      "report_" + event, local_event,
      [](const sentinel::rules::RuleContext& ctx) {
        return ctx.Param("qty").ok();
      },
      [&](const sentinel::rules::RuleContext& ctx) {
        auto qty = ctx.Param("qty");
        std::printf("  [%s] rule fired qty=%lld\n", app.c_str(),
                    qty.ok() ? static_cast<long long>(qty->AsInt()) : -1);
        fired.fetch_add(1);
      });
  if (!rule.ok()) return 1;

  std::atomic<int> received{0};
  status = client.Subscribe(
      event, ParamContext::kRecent,
      [&](const std::string& name, const sentinel::detector::Occurrence& occ) {
        auto qty = occ.Param("qty");
        std::printf("  [%s] detection %s qty=%lld\n", app.c_str(),
                    name.c_str(),
                    qty.ok() ? static_cast<long long>(qty->AsInt()) : -1);
        auto params = std::make_shared<sentinel::detector::ParamList>();
        params->Insert("qty", qty.ok() ? *qty : sentinel::oodb::Value::Int(-1));
        auto txn = db.Begin();
        if (txn.ok()) {
          (void)db.RaiseEvent(local_event, params, *txn);
          (void)db.Commit(*txn);
        }
        received.fetch_add(1);
      });
  if (!status.ok()) return 1;

  for (int i = 1; i <= events; ++i) {
    // One client transaction per event so the trace roots at a txn span.
    auto txn = db.Begin();
    auto params = std::make_shared<sentinel::detector::ParamList>();
    params->Insert("qty", sentinel::oodb::Value::Int(i));
    (void)client.NotifyMethod("Order", /*oid=*/1, EventModifier::kEnd,
                              "void sell(int qty)", params,
                              txn.ok() ? *txn : 1);
    if (txn.ok()) (void)db.Commit(*txn);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // At-most-once delivery: wait for what made it through, then report.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (received.load() < events &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Linger for one heartbeat round trip so a short run still leaves with
  // an RTT sample and a primed clock-offset estimate for the trace export.
  const auto rtt_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (client.stats().rtt_samples == 0 &&
         std::chrono::steady_clock::now() < rtt_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  if (!trace_prefix.empty()) {
    sentinel::obs::SpanTracer::ExportMeta meta;
    meta.process = "client:" + app;
    meta.clock_offset_ns = client.clock_offset_ns();
    auto exported = db.span_tracer()->ExportChromeTrace(
        trace_prefix + "_" + app + ".json", meta);
    if (!exported.ok()) {
      std::fprintf(stderr, "client: trace export failed: %s\n",
                   exported.ToString().c_str());
    }
  }
  const auto stats = client.stats();
  std::printf("[%s] sent=%llu received=%d fired=%d dropped=%llu sheds=%llu "
              "reconnects=%llu rtt_samples=%llu offset_us=%lld\n",
              app.c_str(),
              static_cast<unsigned long long>(stats.notifies_sent),
              received.load(), fired.load(),
              static_cast<unsigned long long>(stats.notifies_dropped),
              static_cast<unsigned long long>(stats.sheds_received),
              static_cast<unsigned long long>(
                  stats.sessions_established > 0
                      ? stats.sessions_established - 1
                      : 0),
              static_cast<unsigned long long>(stats.rtt_samples),
              static_cast<long long>(stats.clock_offset_us));
  client.Stop();
  db.AttachRemoteGedClient(nullptr);
  (void)db.Close();
  return received.load() > 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "daemon") == 0) {
    const int bus_port = std::atoi(argv[2]);
    const int monitor_port = argc >= 4 ? std::atoi(argv[3]) : -1;
    const int seconds = argc >= 5 ? std::atoi(argv[4]) : 30;
    return RunDaemon(bus_port, monitor_port, seconds);
  }
  if (argc >= 5 && std::strcmp(argv[1], "client") == 0) {
    return RunClient(std::atoi(argv[2]), argv[3], std::atoi(argv[4]));
  }
  std::fprintf(stderr,
               "usage: %s daemon <bus_port> [monitor_port] [seconds]\n"
               "       %s client <bus_port> <app_name> <n_events>\n",
               argv[0], argv[0]);
  return 64;
}
