file(REMOVE_RECURSE
  "CMakeFiles/bench_ged.dir/bench_ged.cc.o"
  "CMakeFiles/bench_ged.dir/bench_ged.cc.o.d"
  "bench_ged"
  "bench_ged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
