file(REMOVE_RECURSE
  "CMakeFiles/bench_primitive_events.dir/bench_primitive_events.cc.o"
  "CMakeFiles/bench_primitive_events.dir/bench_primitive_events.cc.o.d"
  "bench_primitive_events"
  "bench_primitive_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_primitive_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
