# Empty compiler generated dependencies file for bench_batch_vs_online.
# This may be replaced when dependencies are built.
