file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_vs_online.dir/bench_batch_vs_online.cc.o"
  "CMakeFiles/bench_batch_vs_online.dir/bench_batch_vs_online.cc.o.d"
  "bench_batch_vs_online"
  "bench_batch_vs_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_vs_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
