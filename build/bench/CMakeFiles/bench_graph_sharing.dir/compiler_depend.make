# Empty compiler generated dependencies file for bench_graph_sharing.
# This may be replaced when dependencies are built.
