file(REMOVE_RECURSE
  "CMakeFiles/bench_graph_sharing.dir/bench_graph_sharing.cc.o"
  "CMakeFiles/bench_graph_sharing.dir/bench_graph_sharing.cc.o.d"
  "bench_graph_sharing"
  "bench_graph_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
