file(REMOVE_RECURSE
  "CMakeFiles/bench_object_cache.dir/bench_object_cache.cc.o"
  "CMakeFiles/bench_object_cache.dir/bench_object_cache.cc.o.d"
  "bench_object_cache"
  "bench_object_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_object_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
