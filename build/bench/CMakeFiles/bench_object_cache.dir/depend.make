# Empty dependencies file for bench_object_cache.
# This may be replaced when dependencies are built.
