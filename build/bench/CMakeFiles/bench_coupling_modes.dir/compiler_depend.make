# Empty compiler generated dependencies file for bench_coupling_modes.
# This may be replaced when dependencies are built.
