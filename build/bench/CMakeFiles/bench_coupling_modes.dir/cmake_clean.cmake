file(REMOVE_RECURSE
  "CMakeFiles/bench_coupling_modes.dir/bench_coupling_modes.cc.o"
  "CMakeFiles/bench_coupling_modes.dir/bench_coupling_modes.cc.o.d"
  "bench_coupling_modes"
  "bench_coupling_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coupling_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
