# Empty compiler generated dependencies file for bench_threading.
# This may be replaced when dependencies are built.
