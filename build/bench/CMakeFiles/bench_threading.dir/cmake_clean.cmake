file(REMOVE_RECURSE
  "CMakeFiles/bench_threading.dir/bench_threading.cc.o"
  "CMakeFiles/bench_threading.dir/bench_threading.cc.o.d"
  "bench_threading"
  "bench_threading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
