file(REMOVE_RECURSE
  "CMakeFiles/bench_beast.dir/bench_beast.cc.o"
  "CMakeFiles/bench_beast.dir/bench_beast.cc.o.d"
  "bench_beast"
  "bench_beast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_beast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
