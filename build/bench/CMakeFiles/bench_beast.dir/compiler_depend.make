# Empty compiler generated dependencies file for bench_beast.
# This may be replaced when dependencies are built.
