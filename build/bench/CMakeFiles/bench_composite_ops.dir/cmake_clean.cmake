file(REMOVE_RECURSE
  "CMakeFiles/bench_composite_ops.dir/bench_composite_ops.cc.o"
  "CMakeFiles/bench_composite_ops.dir/bench_composite_ops.cc.o.d"
  "bench_composite_ops"
  "bench_composite_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_composite_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
