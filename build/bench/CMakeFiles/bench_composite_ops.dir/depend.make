# Empty dependencies file for bench_composite_ops.
# This may be replaced when dependencies are built.
