file(REMOVE_RECURSE
  "CMakeFiles/bench_rule_exec.dir/bench_rule_exec.cc.o"
  "CMakeFiles/bench_rule_exec.dir/bench_rule_exec.cc.o.d"
  "bench_rule_exec"
  "bench_rule_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rule_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
