# Empty compiler generated dependencies file for bench_rule_exec.
# This may be replaced when dependencies are built.
