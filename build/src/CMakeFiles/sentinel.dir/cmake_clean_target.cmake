file(REMOVE_RECURSE
  "libsentinel.a"
)
