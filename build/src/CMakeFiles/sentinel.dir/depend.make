# Empty dependencies file for sentinel.
# This may be replaced when dependencies are built.
