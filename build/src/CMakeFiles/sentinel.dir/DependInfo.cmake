
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/sentinel.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/sentinel.dir/common/status.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/common/status.cc.o.d"
  "/root/repo/src/core/active_database.cc" "src/CMakeFiles/sentinel.dir/core/active_database.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/core/active_database.cc.o.d"
  "/root/repo/src/core/reactive.cc" "src/CMakeFiles/sentinel.dir/core/reactive.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/core/reactive.cc.o.d"
  "/root/repo/src/debug/rule_debugger.cc" "src/CMakeFiles/sentinel.dir/debug/rule_debugger.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/debug/rule_debugger.cc.o.d"
  "/root/repo/src/detector/event_log.cc" "src/CMakeFiles/sentinel.dir/detector/event_log.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/detector/event_log.cc.o.d"
  "/root/repo/src/detector/event_node.cc" "src/CMakeFiles/sentinel.dir/detector/event_node.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/detector/event_node.cc.o.d"
  "/root/repo/src/detector/event_types.cc" "src/CMakeFiles/sentinel.dir/detector/event_types.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/detector/event_types.cc.o.d"
  "/root/repo/src/detector/local_detector.cc" "src/CMakeFiles/sentinel.dir/detector/local_detector.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/detector/local_detector.cc.o.d"
  "/root/repo/src/detector/operator_nodes.cc" "src/CMakeFiles/sentinel.dir/detector/operator_nodes.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/detector/operator_nodes.cc.o.d"
  "/root/repo/src/ged/global_detector.cc" "src/CMakeFiles/sentinel.dir/ged/global_detector.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/ged/global_detector.cc.o.d"
  "/root/repo/src/oodb/database.cc" "src/CMakeFiles/sentinel.dir/oodb/database.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/oodb/database.cc.o.d"
  "/root/repo/src/oodb/name_manager.cc" "src/CMakeFiles/sentinel.dir/oodb/name_manager.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/oodb/name_manager.cc.o.d"
  "/root/repo/src/oodb/object.cc" "src/CMakeFiles/sentinel.dir/oodb/object.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/oodb/object.cc.o.d"
  "/root/repo/src/oodb/object_cache.cc" "src/CMakeFiles/sentinel.dir/oodb/object_cache.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/oodb/object_cache.cc.o.d"
  "/root/repo/src/oodb/persistence_manager.cc" "src/CMakeFiles/sentinel.dir/oodb/persistence_manager.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/oodb/persistence_manager.cc.o.d"
  "/root/repo/src/oodb/schema.cc" "src/CMakeFiles/sentinel.dir/oodb/schema.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/oodb/schema.cc.o.d"
  "/root/repo/src/oodb/value.cc" "src/CMakeFiles/sentinel.dir/oodb/value.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/oodb/value.cc.o.d"
  "/root/repo/src/preproc/compiler.cc" "src/CMakeFiles/sentinel.dir/preproc/compiler.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/preproc/compiler.cc.o.d"
  "/root/repo/src/rules/rule_manager.cc" "src/CMakeFiles/sentinel.dir/rules/rule_manager.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/rules/rule_manager.cc.o.d"
  "/root/repo/src/rules/scheduler.cc" "src/CMakeFiles/sentinel.dir/rules/scheduler.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/rules/scheduler.cc.o.d"
  "/root/repo/src/rules/thread_pool.cc" "src/CMakeFiles/sentinel.dir/rules/thread_pool.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/rules/thread_pool.cc.o.d"
  "/root/repo/src/snoop/lexer.cc" "src/CMakeFiles/sentinel.dir/snoop/lexer.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/snoop/lexer.cc.o.d"
  "/root/repo/src/snoop/parser.cc" "src/CMakeFiles/sentinel.dir/snoop/parser.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/snoop/parser.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/sentinel.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/sentinel.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/sentinel.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/sentinel.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/lock_manager.cc" "src/CMakeFiles/sentinel.dir/storage/lock_manager.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/storage/lock_manager.cc.o.d"
  "/root/repo/src/storage/log_record.cc" "src/CMakeFiles/sentinel.dir/storage/log_record.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/storage/log_record.cc.o.d"
  "/root/repo/src/storage/recovery.cc" "src/CMakeFiles/sentinel.dir/storage/recovery.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/storage/recovery.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/CMakeFiles/sentinel.dir/storage/slotted_page.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/storage/slotted_page.cc.o.d"
  "/root/repo/src/storage/storage_engine.cc" "src/CMakeFiles/sentinel.dir/storage/storage_engine.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/storage/storage_engine.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/CMakeFiles/sentinel.dir/storage/wal.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/storage/wal.cc.o.d"
  "/root/repo/src/txn/nested_txn.cc" "src/CMakeFiles/sentinel.dir/txn/nested_txn.cc.o" "gcc" "src/CMakeFiles/sentinel.dir/txn/nested_txn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
