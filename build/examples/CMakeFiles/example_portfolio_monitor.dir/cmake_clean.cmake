file(REMOVE_RECURSE
  "CMakeFiles/example_portfolio_monitor.dir/portfolio_monitor.cpp.o"
  "CMakeFiles/example_portfolio_monitor.dir/portfolio_monitor.cpp.o.d"
  "example_portfolio_monitor"
  "example_portfolio_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_portfolio_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
