# Empty compiler generated dependencies file for example_portfolio_monitor.
# This may be replaced when dependencies are built.
