file(REMOVE_RECURSE
  "CMakeFiles/example_audit_replay.dir/audit_replay.cpp.o"
  "CMakeFiles/example_audit_replay.dir/audit_replay.cpp.o.d"
  "example_audit_replay"
  "example_audit_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_audit_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
