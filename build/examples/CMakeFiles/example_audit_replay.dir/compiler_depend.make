# Empty compiler generated dependencies file for example_audit_replay.
# This may be replaced when dependencies are built.
