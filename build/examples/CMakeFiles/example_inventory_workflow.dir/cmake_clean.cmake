file(REMOVE_RECURSE
  "CMakeFiles/example_inventory_workflow.dir/inventory_workflow.cpp.o"
  "CMakeFiles/example_inventory_workflow.dir/inventory_workflow.cpp.o.d"
  "example_inventory_workflow"
  "example_inventory_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_inventory_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
