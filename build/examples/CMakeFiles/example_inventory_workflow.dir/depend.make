# Empty dependencies file for example_inventory_workflow.
# This may be replaced when dependencies are built.
