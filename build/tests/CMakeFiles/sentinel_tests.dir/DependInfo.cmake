
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/active_database_test.cc" "tests/CMakeFiles/sentinel_tests.dir/active_database_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/active_database_test.cc.o.d"
  "/root/repo/tests/checkpoint_test.cc" "tests/CMakeFiles/sentinel_tests.dir/checkpoint_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/checkpoint_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/sentinel_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/concurrency_test.cc" "tests/CMakeFiles/sentinel_tests.dir/concurrency_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/concurrency_test.cc.o.d"
  "/root/repo/tests/detector_any_test.cc" "tests/CMakeFiles/sentinel_tests.dir/detector_any_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/detector_any_test.cc.o.d"
  "/root/repo/tests/detector_context_matrix_test.cc" "tests/CMakeFiles/sentinel_tests.dir/detector_context_matrix_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/detector_context_matrix_test.cc.o.d"
  "/root/repo/tests/detector_operators_test.cc" "tests/CMakeFiles/sentinel_tests.dir/detector_operators_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/detector_operators_test.cc.o.d"
  "/root/repo/tests/detector_primitive_test.cc" "tests/CMakeFiles/sentinel_tests.dir/detector_primitive_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/detector_primitive_test.cc.o.d"
  "/root/repo/tests/detector_property_test.cc" "tests/CMakeFiles/sentinel_tests.dir/detector_property_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/detector_property_test.cc.o.d"
  "/root/repo/tests/detector_temporal_test.cc" "tests/CMakeFiles/sentinel_tests.dir/detector_temporal_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/detector_temporal_test.cc.o.d"
  "/root/repo/tests/event_log_test.cc" "tests/CMakeFiles/sentinel_tests.dir/event_log_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/event_log_test.cc.o.d"
  "/root/repo/tests/ged_test.cc" "tests/CMakeFiles/sentinel_tests.dir/ged_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/ged_test.cc.o.d"
  "/root/repo/tests/meta_rules_test.cc" "tests/CMakeFiles/sentinel_tests.dir/meta_rules_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/meta_rules_test.cc.o.d"
  "/root/repo/tests/nested_txn_test.cc" "tests/CMakeFiles/sentinel_tests.dir/nested_txn_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/nested_txn_test.cc.o.d"
  "/root/repo/tests/object_cache_test.cc" "tests/CMakeFiles/sentinel_tests.dir/object_cache_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/object_cache_test.cc.o.d"
  "/root/repo/tests/oid_index_test.cc" "tests/CMakeFiles/sentinel_tests.dir/oid_index_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/oid_index_test.cc.o.d"
  "/root/repo/tests/oodb_test.cc" "tests/CMakeFiles/sentinel_tests.dir/oodb_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/oodb_test.cc.o.d"
  "/root/repo/tests/parser_fuzz_test.cc" "tests/CMakeFiles/sentinel_tests.dir/parser_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/parser_fuzz_test.cc.o.d"
  "/root/repo/tests/preproc_test.cc" "tests/CMakeFiles/sentinel_tests.dir/preproc_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/preproc_test.cc.o.d"
  "/root/repo/tests/reactive_test.cc" "tests/CMakeFiles/sentinel_tests.dir/reactive_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/reactive_test.cc.o.d"
  "/root/repo/tests/recovery_fuzz_test.cc" "tests/CMakeFiles/sentinel_tests.dir/recovery_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/recovery_fuzz_test.cc.o.d"
  "/root/repo/tests/rule_debugger_test.cc" "tests/CMakeFiles/sentinel_tests.dir/rule_debugger_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/rule_debugger_test.cc.o.d"
  "/root/repo/tests/rule_visibility_test.cc" "tests/CMakeFiles/sentinel_tests.dir/rule_visibility_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/rule_visibility_test.cc.o.d"
  "/root/repo/tests/rules_test.cc" "tests/CMakeFiles/sentinel_tests.dir/rules_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/rules_test.cc.o.d"
  "/root/repo/tests/scheduler_test.cc" "tests/CMakeFiles/sentinel_tests.dir/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/scheduler_test.cc.o.d"
  "/root/repo/tests/snoop_lexer_test.cc" "tests/CMakeFiles/sentinel_tests.dir/snoop_lexer_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/snoop_lexer_test.cc.o.d"
  "/root/repo/tests/snoop_parser_test.cc" "tests/CMakeFiles/sentinel_tests.dir/snoop_parser_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/snoop_parser_test.cc.o.d"
  "/root/repo/tests/spec_persistence_test.cc" "tests/CMakeFiles/sentinel_tests.dir/spec_persistence_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/spec_persistence_test.cc.o.d"
  "/root/repo/tests/storage_btree_test.cc" "tests/CMakeFiles/sentinel_tests.dir/storage_btree_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/storage_btree_test.cc.o.d"
  "/root/repo/tests/storage_buffer_pool_test.cc" "tests/CMakeFiles/sentinel_tests.dir/storage_buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/storage_buffer_pool_test.cc.o.d"
  "/root/repo/tests/storage_engine_test.cc" "tests/CMakeFiles/sentinel_tests.dir/storage_engine_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/storage_engine_test.cc.o.d"
  "/root/repo/tests/storage_heap_file_test.cc" "tests/CMakeFiles/sentinel_tests.dir/storage_heap_file_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/storage_heap_file_test.cc.o.d"
  "/root/repo/tests/storage_lock_manager_test.cc" "tests/CMakeFiles/sentinel_tests.dir/storage_lock_manager_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/storage_lock_manager_test.cc.o.d"
  "/root/repo/tests/storage_slotted_page_test.cc" "tests/CMakeFiles/sentinel_tests.dir/storage_slotted_page_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/storage_slotted_page_test.cc.o.d"
  "/root/repo/tests/storage_wal_test.cc" "tests/CMakeFiles/sentinel_tests.dir/storage_wal_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/storage_wal_test.cc.o.d"
  "/root/repo/tests/temporal_rules_test.cc" "tests/CMakeFiles/sentinel_tests.dir/temporal_rules_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/temporal_rules_test.cc.o.d"
  "/root/repo/tests/workflow_integration_test.cc" "tests/CMakeFiles/sentinel_tests.dir/workflow_integration_test.cc.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/workflow_integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sentinel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
