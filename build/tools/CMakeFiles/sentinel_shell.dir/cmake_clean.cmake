file(REMOVE_RECURSE
  "CMakeFiles/sentinel_shell.dir/sentinel_shell.cc.o"
  "CMakeFiles/sentinel_shell.dir/sentinel_shell.cc.o.d"
  "sentinel_shell"
  "sentinel_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
