# Empty dependencies file for sentinel_shell.
# This may be replaced when dependencies are built.
